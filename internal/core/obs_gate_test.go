package core

import (
	"fmt"
	"math/rand"
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/prop"
)

// runGateOnce executes one generated sequence and returns its verdict plus
// the final disk, with or without observability attached.
func runGateOnce(cfg Config, seed int64, withObs bool) (int, int, *disk.Disk, error, *obs.Obs) {
	ccfg := cfg
	var o *obs.Obs
	if withObs {
		o = obs.New(nil).WithTrace(obs.DefaultRingEvents)
		ccfg.StoreConfig.Obs = o
	}
	seq := GenerateSeq(rand.New(rand.NewSource(seed)), ccfg)
	ops, crashes, d, err := RunSeqDisk(seq, ccfg)
	return ops, crashes, d, err, o
}

// TestObservabilityDeterminismGate enforces the transparency property the
// tracing layer is built around: attaching a metrics registry and a trace
// ring to the node must not change any harness verdict or any on-disk byte.
// Each seed's sequence runs twice — observability off, then on with a trace
// ring — and the gate diffs (ops applied, crashes taken, violation text) and
// the final durable disk images. CI runs this test by name as the
// "determinism gate" leg.
func TestObservabilityDeterminismGate(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"clean-everything", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.EnableFailures = true
			c.EnableControlPlane = true
		}},
		// Group commit in the alphabet: the barrier's scheduler metrics
		// (syncs, group sizes, barrier waits) must be as verdict-transparent
		// as every other probe.
		{"group-commit", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.EnableGroupCommit = true
		}},
		// A seeded bug makes the sequence fail: the gate must see the exact
		// same violation with and without tracing attached.
		{"failing-verdict", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.StoreConfig.Bugs = faults.NewSet(faults.Bug2CacheNotDrained)
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			cfg := Config{Seed: 7, Cases: 1, OpsPerCase: 60, Bias: DefaultBias()}
			m.mut(&cfg)
			cfg = cfg.withDefaults()
			for i := 0; i < 8; i++ {
				seed := prop.CaseSeed(cfg.Seed, i)
				opsOff, crashesOff, dOff, errOff, _ := runGateOnce(cfg, seed, false)
				opsOn, crashesOn, dOn, errOn, o := runGateOnce(cfg, seed, true)
				if opsOff != opsOn || crashesOff != crashesOn {
					t.Fatalf("seed %d: progress diverged: ops %d vs %d, crashes %d vs %d",
						seed, opsOff, opsOn, crashesOff, crashesOn)
				}
				if fmt.Sprint(errOff) != fmt.Sprint(errOn) {
					t.Fatalf("seed %d: verdict diverged:\n  obs off: %v\n  obs on:  %v", seed, errOff, errOn)
				}
				if !disk.DurableEqual(dOff, dOn) {
					t.Fatalf("seed %d: final durable disk images differ with observability enabled", seed)
				}
				// The instrumented run must actually have observed something —
				// a trivially-empty registry would make the gate vacuous.
				snap := o.Snapshot()
				if len(snap.Counters) == 0 {
					t.Fatalf("seed %d: instrumented run recorded no metrics", seed)
				}
			}
		})
	}
}

// TestFailureCarriesTrace: when the fleet finds a violation, the minimized
// counterexample must arrive with the replayed execution trail attached.
func TestFailureCarriesTrace(t *testing.T) {
	cfg := DetectionConfig(faults.Bug2CacheNotDrained, 7)
	cfg.Cases = 400
	res := Run(cfg)
	if res.Failure == nil {
		t.Skip("seeded bug not detected within budget; trace attachment exercised elsewhere")
	}
	if len(res.Failure.Trace) == 0 {
		t.Fatal("failure has no trace attached")
	}
	sawHarness := false
	for _, ev := range res.Failure.Trace {
		if ev.Layer == "harness" {
			sawHarness = true
			break
		}
	}
	if !sawHarness {
		t.Fatal("trace has no harness-layer op events")
	}
	if out := res.Failure.FormatTrace(); out == "" {
		t.Fatal("FormatTrace returned empty output for non-empty trace")
	}
}

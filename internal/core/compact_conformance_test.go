package core

import (
	"testing"

	"shardstore/internal/compact"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// aggressiveCompact makes leveled compaction fire constantly under the tiny
// conformance geometries: two L0 runs trigger a promotion and a few hundred
// bytes push a level deeper, so short random histories still explore multi-
// level shapes and frequent manifest-generation swaps.
func aggressiveCompact() compact.Policy {
	return compact.Policy{L0Trigger: 2, BaseBytes: 256, Growth: 2, MaxLevels: 4}
}

// TestCompactStaleManifestDetected seeds the leveled-compaction defect — the
// manifest generation is published without a dependency on the output run
// chunk — and requires the crash-consistency check to catch it: a crash can
// persist the manifest page while dropping the chunk's pages, so recovery
// serves a generation whose merged run never reached the media and reads of
// previously acknowledged shards fail against the model.
func TestCompactStaleManifestDetected(t *testing.T) {
	cfg := Config{
		Seed: 1234, Cases: 4000, OpsPerCase: 50,
		Bias:              DefaultBias(),
		EnableCrashes:     true,
		EnableGroupCommit: true,
		EnableCompaction:  true,
		StoreConfig: store.Config{
			Compact: aggressiveCompact(),
			Bugs:    faults.NewSet(faults.FaultCompactStaleManifest),
		},
		Minimize: true,
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatalf("stale-manifest fault not detected in %d cases (%d ops, %d crashes)",
			res.Cases, res.Ops, res.Crashes)
	}
	t.Logf("detected in case %d; minimized to %d ops: %v",
		res.Failure.Case, len(res.Failure.Minimized), res.Failure.MinimizedErr)
}

// TestCompactionConformanceStress runs the full conformance harness with
// leveled compaction in the alphabet: 12k cases across three seeds must stay
// clean — a crash at any explored point during a compaction leaves reads
// serving the previous manifest generation byte-identically, because the
// inputs stay referenced by the durable manifest until the swap commits.
func TestCompactionConformanceStress(t *testing.T) {
	if raceEnabled {
		t.Skip("12k-case stress skipped under -race; covered by the non-race suite")
	}
	seeds := []int64{1234, 77, 20260807}
	cases := 4000
	if testing.Short() {
		seeds = seeds[:1]
		cases = 1000
	}
	for _, seed := range seeds {
		seed := seed
		cfg := Config{
			Seed: seed, Cases: cases, OpsPerCase: 60,
			Bias:              Bias{KeyReuse: 0.8, PageSizeValues: 0.6, ConstantValueBytes: 0.5, ZeroValues: 0.5, UUIDZeroBias: 0.6},
			EnableCrashes:     true,
			EnableReboots:     true,
			EnableGroupCommit: true,
			EnableCompaction:  true,
			StoreConfig: store.Config{
				Disk:    disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8},
				Compact: aggressiveCompact(),
				Bugs:    faults.NewSet(),
			},
			Minimize: true,
		}
		res := Run(cfg)
		if res.Failure != nil {
			t.Fatalf("seed %d case %d: %v\nminimized(%d): %v", seed,
				res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
		}
		t.Logf("seed %d: %d cases, %d ops, %d crashes clean", seed, res.Cases, res.Ops, res.Crashes)
	}
}

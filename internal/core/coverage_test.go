package core

import (
	"testing"

	"shardstore/internal/coverage"
	"shardstore/internal/store"
)

// TestCoverageBlindSpotAnecdote reproduces the paper's §8.3 missed-bug
// story: "our existing property-based tests had trouble reaching the
// cache-miss code path in this change because the cache size was configured
// to be very large in all tests ... after reducing the cache size, the
// tests automatically found the issue. This missed bug was one motivation
// for our work on coverage metrics."
//
// With an oversized buffer cache the harness never hits the miss path; the
// coverage registry exposes the blind spot, and shrinking the cache closes
// it. (The §8.3 bug itself lived on the miss path; every cache bug seeded
// here (#2) needs that path too, so the blind spot is exactly the state the
// paper warns about.)
func TestCoverageBlindSpotAnecdote(t *testing.T) {
	run := func(cacheCapacity int) *coverage.Registry {
		cov := coverage.NewRegistry()
		cfg := Config{
			Seed: 31, Cases: 60, OpsPerCase: 40, Bias: DefaultBias(),
			StoreConfig: store.Config{CacheCapacity: cacheCapacity, Coverage: cov},
		}
		res := Run(cfg)
		if res.Failure != nil {
			t.Fatalf("clean run failed: %v", res.Failure.Err)
		}
		return cov
	}

	// Oversized cache: the workload's whole working set fits, so only
	// evictions could produce misses — the miss path may go dark.
	huge := run(100000)
	// Right-sized cache: misses are routine.
	small := run(4)

	missProbe := "cache.miss"
	if !small.Covered(missProbe) {
		t.Fatalf("small cache never missed — probe wiring broken?\n%s", small.Report("cache"))
	}
	if small.Count(missProbe) <= huge.Count(missProbe) {
		t.Fatalf("shrinking the cache should increase miss coverage: small=%d huge=%d",
			small.Count(missProbe), huge.Count(missProbe))
	}
	// The monitoring workflow: declare the probes the harness must reach and
	// let Missing flag erosion.
	wanted := []string{"cache.miss", "cache.hit", "lsm.flush", "chunk.reclaim.reset", "store.put", "store.get"}
	if missing := small.Missing(wanted); len(missing) != 0 {
		t.Fatalf("coverage erosion with a right-sized cache: %v", missing)
	}
	t.Logf("huge-cache misses=%d, small-cache misses=%d (blind spot visible in metrics)",
		huge.Count(missProbe), small.Count(missProbe))
}

// TestHarnessCoverageOfSeededSites verifies the harness actually reaches the
// code sites where the Fig 5 bugs live — the precondition for the detection
// experiment to be meaningful (§4.2's purpose for coverage metrics).
func TestHarnessCoverageOfSeededSites(t *testing.T) {
	cov := coverage.NewRegistry()
	cfg := Config{
		Seed: 37, Cases: 250, OpsPerCase: 50, Bias: DefaultBias(),
		EnableCrashes: true, EnableReboots: true, EnableFailures: true, EnableControlPlane: true,
		StoreConfig: store.Config{Coverage: cov},
	}
	if res := Run(cfg); res.Failure != nil {
		t.Fatalf("clean run failed: %v", res.Failure.Err)
	}
	wanted := []string{
		"chunk.reclaim.evacuated", // bug #1/#5/#10 scan territory
		"chunk.reclaim.garbage",   // garbage-drop path
		"cache.drain",             // bug #2 site (fixed path)
		"lsm.flush",               // bug #3 territory
		"store.clean_shutdown",    // bug #3/#4 trigger
		"store.return_to_service", // bug #4 site
		"extent.reset",            // bug #7 site
		"extent.superblock.flush", // bug #6/#8 territory
		"store.crash",             // §5 crash states
		"disk.fail.transient",     // §4.4 failure injection
		"extent.recover",          // recovery path
	}
	if missing := cov.Missing(wanted); len(missing) != 0 {
		t.Fatalf("harness blind spots: %v\n%s", missing, cov.Report(""))
	}
}

package core

import (
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
)

// TestCompactionConcurrencyClean explores the compaction-vs-foreground
// harnesses under both a uniform random scheduler and PCT: with no faults
// seeded, no interleaving of compaction steps with foreground puts, gets,
// reclamation, or a crash may violate read-after-write or lose a
// durable-acknowledged key.
func TestCompactionConcurrencyClean(t *testing.T) {
	if raceEnabled {
		t.Skip("shuttle exploration skipped under -race; see TestConcurrencyHarnessesCleanBaseline")
	}
	harnesses := map[string]func(*faults.Set) func(){
		"foreground": CompactForegroundHarness,
		"crash":      CompactCrashHarness,
	}
	for name, h := range harnesses {
		name, h := name, h
		t.Run(name, func(t *testing.T) {
			body := h(faults.NewSet())
			rep := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(17), Iterations: 300}, body)
			if rep.Failed() {
				t.Fatalf("clean compaction baseline failed: %v", rep.First())
			}
			rep = shuttle.Explore(shuttle.Options{Strategy: shuttle.NewPCT(23, 3, 4000), Iterations: 200}, body)
			if rep.Failed() {
				t.Fatalf("clean compaction baseline failed under PCT: %v", rep.First())
			}
		})
	}
}

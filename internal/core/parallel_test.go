package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"shardstore/internal/coverage"
	"shardstore/internal/faults"
)

// runSnapshot captures everything the determinism guarantee covers: the
// Result fields, the failure identity, and the coverage totals.
type runSnapshot struct {
	cases    int
	ops      int64
	crashes  int64
	failCase int
	failSeed int64
	seq      []Op
	min      []Op
	errMsg   string
	minMsg   string
	cov      map[string]uint64
}

func snapshotRun(t *testing.T, cfg Config, workers int) runSnapshot {
	t.Helper()
	cfg.Workers = workers
	cfg.StoreConfig.Coverage = coverage.NewRegistry()
	res := Run(cfg)
	s := runSnapshot{
		cases: res.Cases, ops: res.Ops, crashes: res.Crashes,
		failCase: -1,
		cov:      cfg.StoreConfig.Coverage.Snapshot(),
	}
	if res.Failure != nil {
		s.failCase = res.Failure.Case
		s.failSeed = res.Failure.Seed
		s.seq = res.Failure.Seq
		s.min = res.Failure.Minimized
		s.errMsg = res.Failure.Err.Error()
		s.minMsg = res.Failure.MinimizedErr.Error()
	}
	return s
}

func assertSameSnapshot(t *testing.T, want, got runSnapshot, workers int) {
	t.Helper()
	if want.cases != got.cases || want.ops != got.ops || want.crashes != got.crashes {
		t.Fatalf("workers=%d totals diverge: cases %d/%d ops %d/%d crashes %d/%d",
			workers, got.cases, want.cases, got.ops, want.ops, got.crashes, want.crashes)
	}
	if want.failCase != got.failCase || want.failSeed != got.failSeed {
		t.Fatalf("workers=%d failure identity diverges: case %d/%d seed %d/%d",
			workers, got.failCase, want.failCase, got.failSeed, want.failSeed)
	}
	if !reflect.DeepEqual(want.seq, got.seq) {
		t.Fatalf("workers=%d failing sequence diverges", workers)
	}
	if !reflect.DeepEqual(want.min, got.min) {
		t.Fatalf("workers=%d minimized sequence diverges:\n%v\nvs\n%v", workers, got.min, want.min)
	}
	if want.errMsg != got.errMsg || want.minMsg != got.minMsg {
		t.Fatalf("workers=%d violation wording diverges:\n%q\nvs\n%q", workers, got.errMsg, want.errMsg)
	}
	if !reflect.DeepEqual(want.cov, got.cov) {
		t.Fatalf("workers=%d coverage totals diverge:\n%v\nvs\n%v", workers, got.cov, want.cov)
	}
}

// TestRunDeterministicAcrossWorkers is the acceptance test for the parallel
// pool: with a fixed seed, Run produces an identical Result — pass/fail,
// failing case index, minimized sequence, violation wording, and coverage
// totals — at worker counts 1, 2, and 8.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	// A failing run: seeded bug #3 falls to the crash/reboot harness a few
	// dozen cases in, so lower-index clean cases, the failing case, and
	// cancelled higher-index cases all occur.
	cfg := DetectionConfig(faults.Bug3ShutdownMetadataSkip, 1234)
	cfg.Cases = 120
	want := snapshotRun(t, cfg, 1)
	if want.failCase < 0 {
		t.Fatal("setup: bug #3 not detected within the budget")
	}
	if want.failCase == 0 {
		t.Fatal("setup: failure at case 0 exercises no reordering")
	}
	for _, workers := range []int{2, 8} {
		assertSameSnapshot(t, want, snapshotRun(t, cfg, workers), workers)
	}
}

func TestRunDeterministicAcrossWorkersClean(t *testing.T) {
	cfg := Config{
		Seed: 13, Cases: 48, OpsPerCase: 30, Bias: DefaultBias(),
		EnableCrashes: true, EnableReboots: true, EnableFailures: true,
	}
	want := snapshotRun(t, cfg, 1)
	if want.failCase >= 0 {
		t.Fatalf("setup: clean run failed: %s", want.errMsg)
	}
	if len(want.cov) == 0 {
		t.Fatal("setup: no coverage recorded")
	}
	for _, workers := range []int{2, 8} {
		assertSameSnapshot(t, want, snapshotRun(t, cfg, workers), workers)
	}
}

// TestIndexConformanceDeterministicAcrossWorkers mirrors the store-harness
// determinism test for the Fig 3 index harness.
func TestIndexConformanceDeterministicAcrossWorkers(t *testing.T) {
	base := IndexConfig{Seed: 11, Cases: 40, OpsPerCase: 25, Bias: DefaultBias()}
	type snap struct {
		cases int
		ops   int64
		fail  bool
		cov   map[string]uint64
	}
	run := func(workers int) snap {
		cfg := base
		cfg.Workers = workers
		cfg.Coverage = coverage.NewRegistry()
		res := RunIndexConformance(cfg)
		return snap{cases: res.Cases, ops: res.Ops, fail: res.Failure != nil, cov: cfg.Coverage.Snapshot()}
	}
	want := run(1)
	if want.fail {
		t.Fatal("setup: clean index run failed")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d index result diverges:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

// TestRunPoolLowestIndexWins drives the pool directly: even when a
// higher-index failure lands first (forced with sleeps), the pool must
// report the lowest-index failure and return exactly the outcomes a
// sequential loop would have produced.
func TestRunPoolLowestIndexWins(t *testing.T) {
	errBoom := errors.New("boom")
	exec := func(ctx context.Context, i int) caseOutcome {
		switch i {
		case 3:
			time.Sleep(30 * time.Millisecond) // the real (lowest) failure lands late
			return caseOutcome{ops: 1, err: errBoom}
		case 7:
			return caseOutcome{ops: 1, err: errBoom} // decoy failure lands first
		default:
			time.Sleep(time.Millisecond)
			return caseOutcome{ops: 1}
		}
	}
	for _, workers := range []int{2, 4, 16} {
		out := runPool(workers, 64, exec)
		if len(out) != 4 {
			t.Fatalf("workers=%d: %d outcomes, want 4 (cut at first failure)", workers, len(out))
		}
		if out[3].err == nil {
			t.Fatalf("workers=%d: failing case lost its error", workers)
		}
		for i := 0; i < 3; i++ {
			if out[i].err != nil {
				t.Fatalf("workers=%d: clean case %d has error %v", workers, i, out[i].err)
			}
		}
	}
}

// TestRunPoolCancelsInflight checks early exit: once case 0 fails, long
// higher-index cases must be cancelled through their context rather than run
// to completion.
func TestRunPoolCancelsInflight(t *testing.T) {
	errBoom := errors.New("boom")
	var cancelled atomic.Int32
	exec := func(ctx context.Context, i int) caseOutcome {
		if i == 0 {
			time.Sleep(10 * time.Millisecond)
			return caseOutcome{err: errBoom}
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return caseOutcome{err: fmt.Errorf("%w: %w", errCaseCancelled, ctx.Err())}
		case <-time.After(5 * time.Second):
			return caseOutcome{}
		}
	}
	start := time.Now() //shardlint:allow determinism wall-clock bound on pool early-exit latency, not a replayed path
	out := runPool(4, 16, exec)
	if elapsed := time.Since(start); elapsed > 2*time.Second { //shardlint:allow determinism wall-clock bound on pool early-exit latency, not a replayed path
		t.Fatalf("pool did not exit early: %v", elapsed)
	}
	if len(out) != 1 || out[0].err == nil {
		t.Fatalf("outcomes: %d, first err %v", len(out), out)
	}
	if cancelled.Load() == 0 {
		t.Fatal("no in-flight case observed cancellation")
	}
}

func TestRunSeqCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seq := []Op{{Kind: OpPut, Key: "k00", Value: []byte{1}}, {Kind: OpGet, Key: "k00"}}
	ops, _, err := RunSeqCtx(ctx, seq, Config{Seed: 1, Cases: 1})
	if !errors.Is(err, errCaseCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ops != 0 {
		t.Fatalf("cancelled before the first op but ran %d", ops)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	const n = 100
	hits := make([]atomic.Int32, n)
	ParallelFor(8, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d run %d times", i, got)
		}
	}
	ParallelFor(4, 0, func(int) { t.Error("fn called for n=0") })
}

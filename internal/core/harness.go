package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/extent"
	"shardstore/internal/faults"
	"shardstore/internal/model"
	"shardstore/internal/obs"
	"shardstore/internal/prop"
	"shardstore/internal/store"
)

// Config tunes a conformance run (the §4 property-based test).
type Config struct {
	// Seed roots the whole run; 0 means 1.
	Seed int64
	// Cases is the number of random op sequences (default 200).
	Cases int
	// OpsPerCase is the sequence length (default 40).
	OpsPerCase int
	// Bias tunes argument selection (§4.2).
	Bias Bias
	// StoreConfig configures the system under test. Bugs/Coverage inside it
	// are honored.
	StoreConfig store.Config
	// EnableCrashes includes DirtyReboot in the alphabet (§5).
	EnableCrashes bool
	// EnableReboots includes CleanReboot in the alphabet.
	EnableReboots bool
	// EnableFailures includes IO failure injection (§4.4).
	EnableFailures bool
	// EnableControlPlane includes List/RemoveDisk/ReturnDisk.
	EnableControlPlane bool
	// EnableScrub includes integrity-scrub rounds in the alphabet.
	EnableScrub bool
	// EnableGroupCommit includes PutDurable in the alphabet: a put that
	// blocks on the scheduler's group-commit barrier until durable.
	EnableGroupCommit bool
	// EnableCompaction includes CompactStep in the alphabet: one leveled
	// compaction (plan + merge + manifest-generation swap) applied without a
	// durability wait, so the interleaved crash ops explore the window
	// between the swap being staged and reaching the media.
	EnableCompaction bool
	// EnableScan includes Scan in the alphabet: an ordered range read over
	// [Key, Key2) checked against the model's ordered-map semantics — the
	// snapshot-consistency property scans must keep while flushes,
	// compaction steps, crashes, and scrub interleave.
	EnableScan bool
	// EnableCorruption includes silent-corruption injection (RotReplica /
	// RotAll). It arms FaultSilentCorruption in the store's fault set and
	// defaults StoreConfig.Replicas to 2, so the checked property is the
	// scrub contract: k < R rotted copies never cost readability, k = R is
	// reported as loss rather than silently served.
	EnableCorruption bool
	// ExhaustiveCrash enumerates block-level crash states at each
	// DirtyReboot instead of sampling one (§5, the BOB/CrashMonkey-style
	// variant). Exponential in dirty pages; bounded by ExhaustiveCap.
	ExhaustiveCrash bool
	// ExhaustiveCap bounds the enumerated crash states per reboot (default
	// 256).
	ExhaustiveCap int
	// Minimize shrinks failing sequences (§4.3). Default true via Run.
	Minimize bool
	// ShrinkBudget bounds replays during minimization (default 2000).
	ShrinkBudget int
	// InvariantEvery checks full model/implementation equivalence every N
	// ops (default 4; 1 = after every op as in Fig 3).
	InvariantEvery int
	// Workers is the number of pool workers cases fan out across (see
	// pool.go); 0 means one per CPU (runtime.GOMAXPROCS). Results are
	// bit-identical at any worker count: same seed + same case count ⇒ same
	// Result. Use 1 to force sequential execution.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cases == 0 {
		c.Cases = 200
	}
	if c.OpsPerCase == 0 {
		c.OpsPerCase = 40
	}
	if c.ExhaustiveCap == 0 {
		c.ExhaustiveCap = 256
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 2000
	}
	if c.InvariantEvery == 0 {
		c.InvariantEvery = 4
	}
	if c.StoreConfig.Disk.PageSize == 0 {
		c.StoreConfig.Disk = disk.DefaultConfig()
	}
	if c.StoreConfig.Bugs == nil {
		c.StoreConfig.Bugs = faults.NewSet()
	}
	if c.EnableCorruption {
		if c.StoreConfig.Replicas == 0 {
			c.StoreConfig.Replicas = 2
		}
		c.StoreConfig.Bugs.Enable(faults.FaultSilentCorruption)
		if c.StoreConfig.Disk.Faults == nil {
			c.StoreConfig.Disk.Faults = c.StoreConfig.Bugs
		}
	}
	if c.StoreConfig.Coverage == nil {
		c.StoreConfig.Coverage = coverage.NewRegistry()
	}
	if c.Bias.UUIDZeroBias > 0 && c.StoreConfig.UUIDZeroBias == 0 {
		c.StoreConfig.UUIDZeroBias = c.Bias.UUIDZeroBias
	}
	return c
}

// Failure reports one failing sequence.
type Failure struct {
	Case      int
	Seed      int64
	Seq       []Op
	Minimized []Op
	Err       error
	// MinimizedErr is the violation the minimized sequence produces (it may
	// differ in wording from Err while exposing the same bug).
	MinimizedErr error
	// Trace is the node's execution trail for the minimized sequence: after
	// minimization the harness replays it once more with a trace ring
	// attached, so the counterexample ships with the IO it actually issued.
	// TraceTruncated counts earlier events the ring overwrote.
	Trace          []obs.Event
	TraceTruncated uint64
}

// FormatTrace renders the failure's trace (empty string when none was
// captured).
func (f *Failure) FormatTrace() string {
	if f == nil || len(f.Trace) == 0 {
		return ""
	}
	return obs.FormatTrace(f.Trace, f.TraceTruncated)
}

// Result summarizes a conformance run.
type Result struct {
	Cases   int
	Ops     int64
	Crashes int64
	Failure *Failure
}

// Run executes the conformance check: Cases random sequences, each applied
// in lockstep to a fresh store and reference model. Cases fan out across
// cfg.Workers pool workers (default: one per CPU); because every case builds
// its own disk+store and derives its RNG from the root seed and case index,
// the Result — pass/fail, failing case index, minimized sequence, and
// coverage totals — is bit-identical at any worker count. The first (i.e.
// lowest-index) failure is minimized and returned; nil Failure means every
// case passed (which, as §8.3 reminds us, "does not mean the code is
// correct, only that the checker could not find a bug").
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	shared := cfg.StoreConfig.Coverage
	outcomes := runPool(cfg.Workers, cfg.Cases, func(ctx context.Context, i int) caseOutcome {
		// Each case records coverage into a private registry; the merge loop
		// below folds in exactly the cases a sequential run would have
		// executed, keeping totals independent of worker count.
		ccfg := cfg
		ccfg.StoreConfig.Coverage = coverage.NewRegistry()
		if ccfg.StoreConfig.Disk.Coverage == shared {
			ccfg.StoreConfig.Disk.Coverage = ccfg.StoreConfig.Coverage
		}
		r := rand.New(rand.NewSource(prop.CaseSeed(cfg.Seed, i)))
		seq := GenerateSeq(r, ccfg)
		ops, crashes, err := RunSeqCtx(ctx, seq, ccfg)
		return caseOutcome{ops: ops, crashes: crashes, cov: ccfg.StoreConfig.Coverage, err: err}
	})

	res := Result{}
	for i, out := range outcomes {
		res.Cases++
		res.Ops += int64(out.ops)
		res.Crashes += int64(out.crashes)
		shared.Merge(out.cov)
		if out.err == nil {
			continue
		}
		// The failing case is by construction the last (and lowest-index)
		// outcome; regenerate its sequence from the root seed and minimize it
		// sequentially, exactly as the sequential loop did.
		seed := prop.CaseSeed(cfg.Seed, i)
		seq := GenerateSeq(rand.New(rand.NewSource(seed)), cfg)
		f := &Failure{Case: i, Seed: seed, Seq: seq, Minimized: seq, Err: out.err, MinimizedErr: out.err}
		if cfg.Minimize {
			fails := func(cand []Op) bool {
				_, _, cerr := RunSeq(cand, cfg)
				return cerr != nil
			}
			f.Minimized = prop.MinimizeSeq(seq, fails, ShrinkOp, cfg.ShrinkBudget)
			if _, _, merr := RunSeq(f.Minimized, cfg); merr != nil {
				f.MinimizedErr = merr
			}
		}
		// Replay the minimized counterexample once more with a trace ring
		// attached so the report carries the node's actual execution trail.
		// Observability is verdict-transparent (the determinism gate enforces
		// it), so this replay reproduces the same violation.
		tcfg := cfg
		tcfg.StoreConfig.Obs = obs.New(nil).WithTrace(obs.DefaultRingEvents)
		RunSeq(f.Minimized, tcfg)
		f.Trace, f.TraceTruncated = tcfg.StoreConfig.Obs.TraceRing().Dump()
		res.Failure = f
	}
	return res
}

// execState is the per-sequence mutable state.
type execState struct {
	cfg       Config
	d         *disk.Disk
	st        *store.Store
	ref       *model.RefStore
	inService bool
	opsRun    int
	crashes   int
	// injected counts FailDiskOnce ops; outstanding() compares it with the
	// disk's consumed-fault counter to decide whether a read error can still
	// be blamed on the environment.
	injected uint64
}

// kv exposes the node under test through the same narrow store.KV interface
// the RPC server accepts. Request-plane ops (Get/Put/Delete/List) go through
// this seam so the harness conformance-checks any KV implementation, not just
// *store.Store; control-plane ops (flush, compaction, reclamation, scrub,
// service transitions) stay on the concrete type because they are specific to
// this node's internals.
func (es *execState) kv() store.KV { return es.st }

// outstanding returns the number of injected faults that have not yet fired.
func (es *execState) outstanding() uint64 {
	consumed := es.d.Stats().InjectedErrs
	if consumed >= es.injected {
		return 0
	}
	return es.injected - consumed
}

// RunSeq applies one operation sequence and returns (ops applied, crashes
// taken, first violation).
func RunSeq(seq []Op, cfg Config) (int, int, error) {
	return RunSeqCtx(context.Background(), seq, cfg)
}

// RunSeqCtx is RunSeq with cooperative cancellation: the sequence is
// abandoned between operations once ctx is done, returning an error that
// wraps both errCaseCancelled and the context's cause. The parallel pool
// uses this for early exit — once a lower-index case has failed, in-flight
// higher-index cases cannot affect the Result and are cut short.
func RunSeqCtx(ctx context.Context, seq []Op, cfg Config) (int, int, error) {
	ops, crashes, _, err := runSeqDisk(ctx, seq, cfg)
	return ops, crashes, err
}

// RunSeqDisk is RunSeq but additionally returns the disk the sequence ran
// against, so callers (e.g. the observability determinism gate) can compare
// final durable images across runs.
func RunSeqDisk(seq []Op, cfg Config) (int, int, *disk.Disk, error) {
	return runSeqDisk(context.Background(), seq, cfg)
}

func runSeqDisk(ctx context.Context, seq []Op, cfg Config) (int, int, *disk.Disk, error) {
	cfg = cfg.withDefaults()
	st, d, err := store.New(cfg.StoreConfig)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("harness: store setup: %w", err)
	}
	es := &execState{cfg: cfg, d: d, st: st, ref: model.NewRefStore(cfg.StoreConfig.Bugs), inService: true}
	tracer := cfg.StoreConfig.Obs
	for i, op := range seq {
		if cerr := ctx.Err(); cerr != nil {
			return es.opsRun, es.crashes, es.d, fmt.Errorf("%w: %w", errCaseCancelled, cerr)
		}
		if err := es.apply(op); err != nil {
			if tracer.Tracing() {
				tracer.Record("harness", "op", op.String(), obs.Outcome(err), 0)
			}
			return es.opsRun, es.crashes, es.d, fmt.Errorf("op %d %s: %w", i, op, err)
		}
		if tracer.Tracing() {
			tracer.Record("harness", "op", op.String(), "ok", 0)
		}
		es.opsRun++
		if cfg.InvariantEvery > 0 && (i+1)%cfg.InvariantEvery == 0 {
			if err := es.checkInvariants(); err != nil {
				return es.opsRun, es.crashes, es.d, fmt.Errorf("after op %d %s: %w", i, op, err)
			}
		}
	}
	if err := es.checkInvariants(); err != nil {
		return es.opsRun, es.crashes, es.d, fmt.Errorf("final check: %w", err)
	}
	return es.opsRun, es.crashes, es.d, nil
}

// reopen recovers a store on the disk, retrying a few times because a
// pending injected transient fault can fail the first recovery attempt
// (transients clear once they fire).
func (es *execState) reopen() (*store.Store, error) {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		var ns *store.Store
		ns, err = store.Open(es.d, es.cfg.StoreConfig)
		if err == nil {
			return ns, nil
		}
		if !es.ref.HasFailed() {
			break
		}
	}
	return nil, err
}

// implRead adapts store.Get to the model's read signature: (nil, nil) for
// not-found, error only for conclusive failures. Transient injected faults
// are retried through — they fire once — so an error returned here means the
// data is genuinely unreadable.
func (es *execState) implRead(key string) ([]byte, error) {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		pending := es.outstanding() > 0
		var v []byte
		v, err = es.kv().Get(key)
		if errors.Is(err, store.ErrNotFound) {
			return nil, nil
		}
		if err == nil {
			return v, nil
		}
		if !pending {
			return nil, err
		}
	}
	return nil, err
}

// implScan adapts OrderedKV.Scan to the model check, retrying through
// transient injected faults exactly like implRead: they fire once, so an
// error that survives the retries is conclusive.
func (es *execState) implScan(start, end string, limit int) ([]store.ScanEntry, bool, error) {
	okv := es.kv().(store.OrderedKV)
	var (
		entries []store.ScanEntry
		more    bool
		err     error
	)
	for attempt := 0; attempt < 4; attempt++ {
		pending := es.outstanding() > 0
		entries, more, err = okv.Scan(start, end, limit)
		if err == nil {
			return entries, more, nil
		}
		if !pending {
			return nil, false, err
		}
	}
	return nil, false, err
}

// rangeRotted reports whether any model key in [start, end) may still hold
// its rotted-era entry. A scan reads every in-range shard's data, so one
// fully rotted shard is allowed to fail the whole page — the same "fail by
// returning no data, never the wrong data" license CheckRead grants point
// reads.
func (es *execState) rangeRotted(start, end string) bool {
	for _, k := range es.ref.Keys() {
		if k < start || (end != "" && k >= end) {
			continue
		}
		if es.ref.Rotted(k) {
			return true
		}
	}
	return false
}

// benignResourceErr reports whether err is resource exhaustion (disk full).
// The paper explicitly excludes resource exhaustion from property-based
// testing because there is no tractable correctness oracle for it (§4.4);
// the harness treats such failures as clean no-ops.
func benignResourceErr(err error) bool {
	return errors.Is(err, extent.ErrNoFreeExtent) ||
		errors.Is(err, extent.ErrExtentFull) ||
		errors.Is(err, chunk.ErrChunkTooBig)
}

// opFailure converts an unexpected implementation error into a violation,
// honoring the §4.4 has-failed relaxation and the resource-exhaustion
// exclusion.
func (es *execState) opFailure(what string, err error) error {
	if err == nil {
		return nil
	}
	if benignResourceErr(err) {
		return nil
	}
	if es.ref.HasFailed() {
		return nil // implementation operations may fail after injected faults
	}
	return fmt.Errorf("%s failed with no fault injected: %w", what, err)
}

func (es *execState) apply(op Op) error {
	es.st.Reseed(op.Tag)
	switch op.Kind {
	case OpGet:
		if !es.inService {
			return es.expectOutOfService(func() error { _, err := es.kv().Get(op.Key); return err })
		}
		got, err := es.implRead(op.Key)
		gotErr := err != nil
		if cerr := es.ref.CheckRead(op.Key, got, gotErr); cerr != nil {
			return cerr
		}
		if !gotErr && es.ref.HasFailed() {
			es.ref.ResolveMaybe(op.Key, got)
		}
		return nil

	case OpPut:
		if !es.inService {
			return es.expectOutOfService(func() error { _, err := es.kv().Put(op.Key, op.Value); return err })
		}
		d, err := es.kv().Put(op.Key, op.Value)
		if err != nil {
			if benignResourceErr(err) {
				return nil // disk full: the put did not take effect
			}
			if ferr := es.opFailure("Put", err); ferr != nil {
				return ferr
			}
			es.ref.ApplyPut(op.Key, op.Value, nil, true)
			return nil
		}
		es.ref.ApplyPut(op.Key, op.Value, d, false)
		return nil

	case OpPutDurable:
		if !es.inService {
			return es.expectOutOfService(func() error { _, err := es.kv().Put(op.Key, op.Value); return err })
		}
		d, err := es.kv().Put(op.Key, op.Value)
		if err != nil {
			if benignResourceErr(err) {
				return nil
			}
			if ferr := es.opFailure("PutDurable", err); ferr != nil {
				return ferr
			}
			es.ref.ApplyPut(op.Key, op.Value, nil, true)
			return nil
		}
		es.ref.ApplyPut(op.Key, op.Value, d, false)
		// The write is in the model; now cross the commit barrier. A failed
		// wait (injected IO fault) leaves the put in-flight, which the model
		// already tolerates via the dependency's persistence state.
		if err := es.st.WaitDurable(d); err != nil {
			return es.opFailure("WaitDurable", err)
		}
		return nil

	case OpDelete:
		if !es.inService {
			return es.expectOutOfService(func() error { _, err := es.kv().Delete(op.Key); return err })
		}
		d, err := es.kv().Delete(op.Key)
		if err != nil {
			if ferr := es.opFailure("Delete", err); ferr != nil {
				return ferr
			}
			es.ref.ApplyDelete(op.Key, nil, true)
			return nil
		}
		es.ref.ApplyDelete(op.Key, d, false)
		return nil

	case OpList:
		if !es.inService {
			return nil
		}
		ids, err := es.kv().List()
		if err != nil {
			return es.opFailure("List", err)
		}
		return es.checkListing(ids)

	case OpFlushIndex:
		if !es.inService {
			return nil
		}
		_, err := es.st.FlushIndex()
		return es.opFailure("FlushIndex", err)

	case OpFlushSuperblock:
		if !es.inService {
			return nil
		}
		_, err := es.st.FlushSuperblock()
		return es.opFailure("FlushSuperblock", err)

	case OpSchedStep:
		es.st.SchedStep()
		return nil

	case OpSchedSync:
		return es.opFailure("SchedSync", es.st.SchedSync())

	case OpPump:
		if !es.inService {
			return nil
		}
		return es.opFailure("Pump", es.st.Pump())

	case OpCompactIndex:
		if !es.inService {
			return nil
		}
		return es.opFailure("CompactIndex", es.st.CompactIndex())

	case OpCompactStep:
		if !es.inService {
			return nil
		}
		// Compaction rewrites representation, never contents: the reference
		// model is unchanged, and the equivalence checks after this op are
		// what verify the rewrite preserved every entry.
		_, err := es.st.CompactStep()
		return es.opFailure("CompactStep", err)

	case OpScan:
		okv, ordered := es.kv().(store.OrderedKV)
		if !ordered {
			return nil // point-only backends don't owe ordered-map semantics
		}
		if !es.inService {
			return es.expectOutOfService(func() error {
				_, _, err := okv.Scan(op.Key, op.Key2, op.Extent)
				return err
			})
		}
		entries, more, err := es.implScan(op.Key, op.Key2, op.Extent)
		if err != nil {
			if es.rangeRotted(op.Key, op.Key2) {
				return nil
			}
			// Like a point read, a persistent scan failure with no rot in
			// range means data is gone or corrupt — never forgiven.
			return fmt.Errorf("Scan of [%q, %q) failed persistently: %w", op.Key, op.Key2, err)
		}
		keys := make([]string, len(entries))
		values := make([][]byte, len(entries))
		for i, e := range entries {
			keys[i] = e.Key
			values[i] = e.Value
		}
		if cerr := es.ref.CheckScan(op.Key, op.Key2, op.Extent, keys, values, more); cerr != nil {
			return cerr
		}
		if es.ref.HasFailed() {
			for i := range keys {
				es.ref.ResolveMaybe(keys[i], values[i])
			}
		}
		return nil

	case OpReclaim:
		if !es.inService {
			return nil
		}
		ext := disk.ExtentID(op.Extent % es.cfg.StoreConfig.Disk.ExtentCount)
		err := es.st.Reclaim(ext)
		es.ref.MarkReclaim()
		if err != nil {
			if errors.Is(err, chunk.ErrBusy) || errors.Is(err, chunk.ErrAborted) {
				return nil // busy extents and fault-aborted reclaims are expected
			}
			// Reclaiming a non-data extent is rejected; that's fine too.
			return nil
		}
		return nil

	case OpDrainCache:
		es.st.DrainCache()
		return nil

	case OpRemoveDisk:
		if !es.inService {
			return nil
		}
		if err := es.opFailure("RemoveFromService", es.st.RemoveFromService()); err != nil {
			return err
		}
		es.inService = false
		return nil

	case OpReturnDisk:
		if es.inService {
			return nil
		}
		ns, err := es.st.ReturnToService()
		if err != nil {
			ns, err = es.reopen()
			if err != nil {
				return es.opFailure("ReturnToService", err)
			}
		}
		es.st = ns
		es.inService = true
		return nil

	case OpFailDiskOnce:
		ext := disk.ExtentID(op.Extent % es.cfg.StoreConfig.Disk.ExtentCount)
		es.d.InjectFailOnce(ext)
		es.injected++
		es.ref.MarkFailed()
		return nil

	case OpCleanReboot:
		if !es.inService {
			return nil
		}
		es.crashes += 0
		if err := es.st.CleanShutdown(); err != nil {
			if benignResourceErr(err) {
				// Shutdown could not flush for lack of space, so buffered
				// mutations may be lost across the reopen: model it exactly
				// like a dirty transition (persistent data must survive,
				// in-flight data may not).
				ns, rerr := es.reopen()
				if rerr != nil {
					return fmt.Errorf("recovery after failed shutdown: %w", rerr)
				}
				es.st = ns
				return es.ref.AdoptDirtyReboot(es.implRead)
			}
			return es.opFailure("CleanShutdown", err)
		}
		// Forward progress (§5): after a clean shutdown every dependency
		// must report persistent.
		if !es.ref.HasFailed() {
			if err := es.ref.CheckCleanShutdown(); err != nil {
				return err
			}
		}
		ns, err := es.reopen()
		if err != nil {
			return fmt.Errorf("recovery after clean reboot: %w", err)
		}
		es.st = ns
		return nil

	case OpDirtyReboot:
		return es.dirtyReboot(op)

	case OpScrub:
		if !es.inService {
			return nil
		}
		_, err := es.st.ScrubRound()
		if ferr := es.opFailure("Scrub", err); ferr != nil {
			return ferr
		}
		// The loss verdict must be honest: a shard the scrubber reports
		// irreparable must actually have had every replica of a piece
		// corrupted (k = R). Anything else is a scrubber defect — it either
		// failed to use a surviving replica or repaired from an unverified
		// source and then lost the survivors.
		for _, k := range es.st.Scrubber().LostKeys() {
			if !es.ref.Rotted(k) {
				return fmt.Errorf("scrub reported shard %q irreparable, but fewer than all replicas were corrupted", k)
			}
		}
		return nil

	case OpRotReplica, OpRotAll:
		if !es.inService {
			return nil
		}
		return es.applyRot(op)

	default:
		return fmt.Errorf("harness: unknown op kind %v", op.Kind)
	}
}

// expectOutOfService asserts that an op on an out-of-service disk fails with
// exactly ErrOutOfService.
func (es *execState) expectOutOfService(call func() error) error {
	err := call()
	if !errors.Is(err, store.ErrOutOfService) {
		return fmt.Errorf("op on out-of-service disk returned %v, want ErrOutOfService", err)
	}
	return nil
}

// checkListing validates a control-plane listing against the model: every
// definitely-present shard must be listed, and nothing definitely-absent may
// be listed.
func (es *execState) checkListing(ids []string) error {
	listed := make(map[string]bool, len(ids))
	for _, id := range ids {
		listed[id] = true
	}
	for _, key := range es.ref.Keys() {
		v, present := es.ref.MustBePresent(key)
		_ = v
		if present && !listed[key] {
			return fmt.Errorf("List omitted shard %q that must be present", key)
		}
		if !present {
			if allowed := es.ref.Expected(key); len(allowed) == 1 && allowed[0] == nil && listed[key] {
				return fmt.Errorf("List returned shard %q that must be absent", key)
			}
		}
	}
	return nil
}

// checkInvariants is the Fig 3 check_invariants: the implementation and the
// reference model must agree on the key-value mapping (modulo the §4.4
// relaxation and crash ambiguity).
func (es *execState) checkInvariants() error {
	if !es.inService {
		return nil
	}
	for _, key := range es.ref.Keys() {
		got, err := es.implRead(key)
		if cerr := es.ref.CheckRead(key, got, err != nil); cerr != nil {
			return fmt.Errorf("invariant: %w", cerr)
		}
	}
	// No phantom keys: everything the implementation lists must be at least
	// possibly present in the model.
	var implKeys []string
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		pending := es.outstanding() > 0
		implKeys, err = es.st.Keys()
		if err == nil {
			break
		}
		if !pending {
			return fmt.Errorf("invariant: Keys failed: %w", err)
		}
	}
	if err != nil {
		return fmt.Errorf("invariant: Keys failed repeatedly: %w", err)
	}
	for _, k := range implKeys {
		allowed := es.ref.Expected(k)
		if len(allowed) == 1 && allowed[0] == nil {
			return fmt.Errorf("invariant: implementation has phantom shard %q", k)
		}
	}
	return nil
}

// dirtyReboot implements the DirtyReboot(RebootType) op of §5: optional
// component flushes, a crash that tears the disk cache, recovery, and the
// persistence check through the model's crash extension.
func (es *execState) dirtyReboot(op Op) error {
	if es.inService {
		if op.Flags&RebootFlushIndex != 0 {
			if _, err := es.st.FlushIndex(); err != nil && !es.ref.HasFailed() && !benignResourceErr(err) {
				return fmt.Errorf("reboot index flush: %w", err)
			}
		}
		if op.Flags&RebootFlushSuperblock != 0 {
			if _, err := es.st.FlushSuperblock(); err != nil && !es.ref.HasFailed() {
				return fmt.Errorf("reboot superblock flush: %w", err)
			}
		}
		if op.Flags&RebootSchedStep != 0 {
			es.st.SchedStep()
		}
		if op.Flags&RebootSchedSync != 0 {
			if err := es.st.SchedSync(); err != nil && !es.ref.HasFailed() {
				return fmt.Errorf("reboot sched sync: %w", err)
			}
		}
	}
	es.crashes++
	if es.cfg.ExhaustiveCrash {
		return es.exhaustiveCrash(op)
	}
	rng := rand.New(rand.NewSource(op.CrashSeed))
	es.st.Crash(rng)
	ns, err := es.reopen()
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	es.st = ns
	es.inService = true
	if err := es.ref.AdoptDirtyReboot(es.implRead); err != nil {
		return err
	}
	return nil
}

// exhaustiveCrash enumerates block-level crash states (§5): every subset of
// the dirty pages (up to ExhaustiveCap), checking recovery + the persistence
// property in each, then continues execution from the last state.
func (es *execState) exhaustiveCrash(op Op) error {
	dirty := es.d.DirtyPages()
	n := len(dirty)
	subsets := 1 << uint(minInt(n, 20))
	if subsets > es.cfg.ExhaustiveCap {
		subsets = es.cfg.ExhaustiveCap
	}
	snap := es.d.Snapshot()
	for mask := 0; mask < subsets; mask++ {
		es.d.Restore(snap)
		m := mask
		es.st.CrashKeep(func(a disk.PageAddr) bool {
			for i, da := range dirty {
				if da == a {
					return m&(1<<uint(i)) != 0
				}
			}
			return false
		})
		ns, err := store.Open(es.d, es.cfg.StoreConfig)
		if err != nil {
			return fmt.Errorf("exhaustive recovery (mask %x): %w", mask, err)
		}
		refClone := es.ref.Clone()
		readClone := func(key string) ([]byte, error) {
			v, err := ns.Get(key)
			if errors.Is(err, store.ErrNotFound) {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			return v, nil
		}
		if err := refClone.AdoptDirtyReboot(readClone); err != nil {
			return fmt.Errorf("crash state %x of %x: %w", mask, subsets, err)
		}
		if mask == subsets-1 {
			// Continue the sequence from the final enumerated state.
			es.st = ns
			es.inService = true
			if err := es.ref.AdoptDirtyReboot(readClone); err != nil {
				return err
			}
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

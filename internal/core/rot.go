package core

import (
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/disk"
	"shardstore/internal/store"
)

// applyRot implements the silent-corruption ops. Every random choice derives
// from op.CrashSeed, so minimized sequences replay identically.
//
// RotReplica enforces k < R at injection time: it corrupts one replica only
// if at least two replicas of the chosen piece currently verify, so the shard
// must remain readable through the surviving copy (and a scrub round must
// repair it) — that invariant is exactly what the lockstep model keeps
// checking, with no model change needed. RotAll corrupts every replica
// (k = R) and tells the model the shard may now legitimately fail to read;
// the scrub op separately asserts the loss is *reported*, never silently
// served.
func (es *execState) applyRot(op Op) error {
	entry, err := es.st.Index().Get(op.Key)
	if err != nil {
		return nil // absent shard: nothing to rot
	}
	groups, err := store.DecodeEntryGroups(entry)
	if err != nil || len(groups) == 0 {
		return nil
	}
	group := groups[op.Extent%len(groups)]
	rng := rand.New(rand.NewSource(op.CrashSeed))
	switch op.Kind {
	case OpRotReplica:
		var good []int
		for i, loc := range group {
			if es.replicaVerifies(op.Key, loc) {
				good = append(good, i)
			}
		}
		if len(good) < 2 {
			return nil // would push k to R; keep the property k < R
		}
		es.rotLocator(group[good[0]], rng)
	case OpRotAll:
		rotted := false
		for _, loc := range group {
			if es.rotLocator(loc, rng) {
				rotted = true
			}
		}
		if rotted {
			es.ref.MarkRotted(op.Key)
		}
	}
	return nil
}

// replicaVerifies reports whether the frame at loc currently reads, decodes,
// and carries the right owner — through the same IO path the store uses, so
// "good" matches what a reader (and the scrubber) would observe.
func (es *execState) replicaVerifies(key string, loc chunk.Locator) bool {
	buf := make([]byte, loc.Length)
	if err := es.st.Extents().Read(loc.Extent, loc.Offset, loc.Length, buf); err != nil {
		return false
	}
	_, owner, _, err := chunk.DecodeFrame(buf)
	return err == nil && owner == key
}

// rotLocator corrupts one seed-chosen durable page of the frame at loc:
// mostly bit flips, occasionally a zeroed page. Chunks are page aligned, so
// the rot stays within this frame.
func (es *execState) rotLocator(loc chunk.Locator, rng *rand.Rand) bool {
	ps := es.cfg.StoreConfig.Disk.PageSize
	if ps <= 0 || loc.Length <= 0 {
		return false
	}
	pages := (loc.Length + ps - 1) / ps
	page := loc.Offset/ps + rng.Intn(pages)
	mode := disk.RotFlip
	if rng.Float64() < 0.25 {
		mode = disk.RotZero
	}
	return es.d.CorruptPage(loc.Extent, page, mode, rng.Int63())
}

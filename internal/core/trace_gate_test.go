package core

import (
	"fmt"
	"math/rand"
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/prop"
)

// TestTraceDeterminismGate extends the observability transparency gate to
// request-span tracing: attaching a span tracer (which adds clock reads and
// background-activity windows on the disk-sync, compaction, scrub, and
// reclamation paths) must not change any harness verdict or any durable
// disk byte. Each seed's sequence runs twice — once bare, once with the
// full tracing stack (event ring + span tracer with a slow log) — and the
// gate diffs progress, verdict text, and the final durable disk images.
// CI runs this test by name as the "trace determinism gate" leg.
func TestTraceDeterminismGate(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"clean-everything", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.EnableFailures = true
			c.EnableControlPlane = true
		}},
		// Group commit is where span code sits closest to the durability
		// decision (the leader's sync window, follower barrier stages): the
		// barrier must coalesce identically with the tracer attached.
		{"group-commit", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.EnableGroupCommit = true
		}},
		// A seeded bug: the exact same violation must surface with spans on.
		{"failing-verdict", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.StoreConfig.Bugs = faults.NewSet(faults.Bug2CacheNotDrained)
		}},
	}
	runOnce := func(cfg Config, seed int64, withSpans bool) (int, int, *disk.Disk, error, *obs.Obs) {
		ccfg := cfg
		var o *obs.Obs
		if withSpans {
			o = obs.New(nil).WithTrace(obs.DefaultRingEvents).WithSpans(64, 2)
			ccfg.StoreConfig.Obs = o
		}
		seq := GenerateSeq(rand.New(rand.NewSource(seed)), ccfg)
		ops, crashes, d, err := RunSeqDisk(seq, ccfg)
		return ops, crashes, d, err, o
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			cfg := Config{Seed: 11, Cases: 1, OpsPerCase: 60, Bias: DefaultBias()}
			m.mut(&cfg)
			cfg = cfg.withDefaults()
			for i := 0; i < 8; i++ {
				seed := prop.CaseSeed(cfg.Seed, i)
				opsOff, crashesOff, dOff, errOff, _ := runOnce(cfg, seed, false)
				opsOn, crashesOn, dOn, errOn, o := runOnce(cfg, seed, true)
				if opsOff != opsOn || crashesOff != crashesOn {
					t.Fatalf("seed %d: progress diverged with spans: ops %d vs %d, crashes %d vs %d",
						seed, opsOff, opsOn, crashesOff, crashesOn)
				}
				if fmt.Sprint(errOff) != fmt.Sprint(errOn) {
					t.Fatalf("seed %d: verdict diverged:\n  spans off: %v\n  spans on:  %v", seed, errOff, errOn)
				}
				if !disk.DurableEqual(dOff, dOn) {
					t.Fatalf("seed %d: final durable disk images differ with span tracing enabled", seed)
				}
				// Guard against a vacuous gate: the tracer must be live and
				// the instrumented run must have metered real work.
				if o.Tracer() == nil {
					t.Fatalf("seed %d: span tracer not attached", seed)
				}
				snap := o.Snapshot()
				if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
					t.Fatalf("seed %d: instrumented run recorded no metrics", seed)
				}
				// And the span machinery itself must replay deterministically
				// on top of the instrumented run's clock.
				sp := o.Tracer().Start(1, "probe", "")
				sp.Finish()
				if traces, _ := o.Tracer().Completed(); len(traces) != 1 {
					t.Fatalf("seed %d: tracer not functional after run", seed)
				}
			}
		})
	}
}

package core

import (
	"math/rand"
	"testing"

	"shardstore/internal/chunk"
)

func TestGenerateSeqRespectsConfig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := Config{OpsPerCase: 50, Bias: DefaultBias()}.withDefaults()
	seq := GenerateSeq(r, cfg)
	if len(seq) != 50 {
		t.Fatalf("length %d", len(seq))
	}
	for _, op := range seq {
		switch op.Kind {
		case OpDirtyReboot, OpCleanReboot, OpFailDiskOnce, OpRemoveDisk, OpReturnDisk, OpList:
			t.Fatalf("disabled op %v generated", op.Kind)
		}
	}
}

func TestGenerateSeqEnablesOptionalOps(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := Config{
		OpsPerCase: 3000, Bias: DefaultBias(),
		EnableCrashes: true, EnableReboots: true, EnableFailures: true, EnableControlPlane: true,
	}.withDefaults()
	seq := GenerateSeq(r, cfg)
	seen := map[OpKind]bool{}
	for _, op := range seq {
		seen[op.Kind] = true
	}
	for _, want := range []OpKind{OpDirtyReboot, OpCleanReboot, OpFailDiskOnce, OpList, OpRemoveDisk, OpGet, OpPut, OpReclaim} {
		if !seen[want] {
			t.Fatalf("op %v never generated in 3000 ops", want)
		}
	}
}

func TestKeyReuseBiasIncreasesHits(t *testing.T) {
	count := func(bias Bias) int {
		r := rand.New(rand.NewSource(3))
		cfg := Config{OpsPerCase: 2000, Bias: bias}.withDefaults()
		seq := GenerateSeq(r, cfg)
		put := map[string]bool{}
		hits := 0
		for _, op := range seq {
			switch op.Kind {
			case OpPut:
				put[op.Key] = true
			case OpGet:
				if put[op.Key] {
					hits++
				}
			}
		}
		return hits
	}
	biased := count(Bias{KeyReuse: 0.9})
	unbiased := count(Bias{})
	if biased <= unbiased {
		t.Fatalf("key-reuse bias ineffective: biased=%d unbiased=%d", biased, unbiased)
	}
}

func TestPageSizeBiasAlignsFrames(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cfg := Config{OpsPerCase: 3000, Bias: Bias{PageSizeValues: 1.0}}.withDefaults()
	ps := cfg.StoreConfig.Disk.PageSize
	seq := GenerateSeq(r, cfg)
	near := 0
	puts := 0
	for _, op := range seq {
		if op.Kind != OpPut {
			continue
		}
		puts++
		flen := chunk.FrameLen(len(op.Key), len(op.Value))
		rem := flen % ps
		if rem <= 2 || rem >= ps-2 {
			near++
		}
	}
	if puts == 0 || float64(near)/float64(puts) < 0.8 {
		t.Fatalf("page-size bias ineffective: %d/%d near-boundary", near, puts)
	}
}

func TestOpsCarryDeterministicTags(t *testing.T) {
	gen := func() []Op {
		r := rand.New(rand.NewSource(5))
		return GenerateSeq(r, Config{OpsPerCase: 20, Bias: DefaultBias()}.withDefaults())
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i].Tag != b[i].Tag || a[i].CrashSeed != b[i].CrashSeed {
			t.Fatal("op tags nondeterministic for fixed seed")
		}
	}
}

func TestShrinkOpProducesSimplerVariants(t *testing.T) {
	op := Op{Kind: OpPut, Key: "k01", Value: make([]byte, 100)}
	variants := ShrinkOp(op)
	if len(variants) == 0 {
		t.Fatal("no shrink candidates for a put")
	}
	for _, v := range variants {
		if len(v.Value) >= 100 && v.Kind == OpPut {
			t.Fatalf("candidate not simpler: %v", v)
		}
	}
	reboot := Op{Kind: OpDirtyReboot, Flags: RebootFlushIndex | RebootSchedStep}
	found := false
	for _, v := range ShrinkOp(reboot) {
		if v.Kind == OpDirtyReboot && v.Flags == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reboot flags not shrunk toward None")
	}
}

func TestStatsOf(t *testing.T) {
	seq := []Op{
		{Kind: OpPut, Value: make([]byte, 10)},
		{Kind: OpPut, Value: make([]byte, 5)},
		{Kind: OpDirtyReboot},
		{Kind: OpGet},
	}
	s := StatsOf(seq)
	if s.Ops != 4 || s.Writes != 2 || s.Crashes != 1 || s.BytesWritten != 15 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRebootFlagsString(t *testing.T) {
	if RebootFlags(0).String() != "None" {
		t.Fatal("zero flags")
	}
	s := (RebootFlushIndex | RebootSchedSync).String()
	if s != "Index+Sync" {
		t.Fatalf("flags string: %q", s)
	}
}

func TestOpStringForms(t *testing.T) {
	ops := []Op{
		{Kind: OpPut, Key: "k", Value: []byte{1}},
		{Kind: OpGet, Key: "k"},
		{Kind: OpReclaim, Extent: 3},
		{Kind: OpDirtyReboot, Flags: RebootSchedStep},
		{Kind: OpPump},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Fatalf("empty string for %v", op.Kind)
		}
	}
}

func TestCheckerForClasses(t *testing.T) {
	if CheckerFor(1) != CheckerPBT {
		t.Fatal("bug1 checker")
	}
	if CheckerFor(5) != CheckerPBTFault {
		t.Fatal("bug5 checker")
	}
	if CheckerFor(8) != CheckerPBTCrash {
		t.Fatal("bug8 checker")
	}
	if CheckerFor(14) != CheckerModelCheck {
		t.Fatal("bug14 checker")
	}
}

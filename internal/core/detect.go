package core

import (
	"fmt"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// CheckerKind names the validation mechanism the paper credits with catching
// each class of issue (Fig 5's section grouping).
type CheckerKind int

const (
	// CheckerPBT is sequential property-based conformance checking (§4).
	CheckerPBT CheckerKind = iota
	// CheckerPBTCrash is PBT over histories with crashes (§5).
	CheckerPBTCrash
	// CheckerPBTFault is PBT with environmental failure injection (§4.4).
	CheckerPBTFault
	// CheckerModelCheck is stateless model checking (§6).
	CheckerModelCheck
)

func (c CheckerKind) String() string {
	switch c {
	case CheckerPBT:
		return "property-based testing"
	case CheckerPBTCrash:
		return "PBT + crash states"
	case CheckerPBTFault:
		return "PBT + failure injection"
	case CheckerModelCheck:
		return "stateless model checking"
	default:
		return fmt.Sprintf("CheckerKind(%d)", int(c))
	}
}

// CheckerFor returns the checker class that the paper's methodology assigns
// to each seeded bug.
func CheckerFor(b faults.Bug) CheckerKind {
	info, _ := faults.Lookup(b)
	switch info.Class {
	case faults.FunctionalCorrectness:
		if b == faults.Bug5ReclaimIOErrorDrop {
			return CheckerPBTFault
		}
		return CheckerPBT
	case faults.CrashConsistency:
		return CheckerPBTCrash
	default:
		return CheckerModelCheck
	}
}

// DetectionConfig builds the conformance configuration used to hunt one
// seeded bug. Most bugs are found by the default harness; a few need the
// §4.2 biases turned toward their corner case (exactly the paper's
// methodology: "only introducing bias where we have quantitative evidence
// that it is beneficial").
func DetectionConfig(b faults.Bug, seed int64) Config {
	cfg := Config{
		Seed:       seed,
		OpsPerCase: 50,
		Bias:       DefaultBias(),
		StoreConfig: store.Config{
			Bugs: faults.NewSet(b),
		},
		Minimize: true,
	}
	switch b {
	case faults.Bug1ReclaimOffByOne:
		// Needs frames ending exactly on page boundaries followed by live
		// chunks; the page-size bias produces them.
		cfg.Bias.PageSizeValues = 0.6
	case faults.Bug2CacheNotDrained:
		// Needs recycled locators with stale cache entries.
	case faults.Bug3ShutdownMetadataSkip:
		cfg.EnableReboots = true
	case faults.Bug4DiskReturnLosesShard:
		cfg.EnableControlPlane = true
	case faults.Bug5ReclaimIOErrorDrop:
		cfg.EnableFailures = true
	case faults.Bug6SuperblockOwnershipDep:
		cfg.EnableCrashes = true
		cfg.EnableReboots = true
		// The trigger is an extent allocation after a reboot whose ownership
		// record a later crash tears away. Allocations are rare on a big
		// disk, so shrink the geometry until they are routine.
		cfg.StoreConfig.Disk = disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8}
		cfg.OpsPerCase = 60
	case faults.Bug7SoftHardPointerSkew,
		faults.Bug8CacheWriteMissingDep,
		faults.Bug9RefModelCrashReclaim:
		cfg.EnableCrashes = true
		cfg.EnableReboots = true
	case faults.Bug10UUIDCollision:
		cfg.EnableCrashes = true
		cfg.EnableReboots = true
		// The §5 scenario needs a recycled extent whose stale multi-page
		// frame survives a torn write, plus a trailer-byte collision. Small
		// extents make recycling routine; zero-biased UUIDs and values make
		// the collision likely; page-size-biased chunk lengths produce
		// multi-page frames.
		cfg.StoreConfig.Disk = disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8}
		cfg.OpsPerCase = 60
		cfg.Bias.ZeroValues = 0.7
		cfg.Bias.UUIDZeroBias = 0.8
		cfg.Bias.PageSizeValues = 0.7
	}
	return cfg
}

// DetectionResult reports a detection run for one bug.
type DetectionResult struct {
	Bug      faults.Bug
	Checker  CheckerKind
	Detected bool
	// CasesNeeded is the number of random cases before the first failure.
	CasesNeeded int
	// Ops is the total operations executed.
	Ops int64
	// Failure is the (minimized) counterexample.
	Failure *Failure
}

// DetectSequential hunts a PBT-detectable bug (Fig 5 classes: functional
// correctness and crash consistency) for up to maxCases random sequences.
// Concurrency bugs (#11–#16) are hunted by the shuttle harnesses instead.
// The hunt fans out across the default worker pool (one worker per CPU);
// use DetectSequentialN to pick the pool width explicitly.
func DetectSequential(b faults.Bug, seed int64, maxCases int) DetectionResult {
	return DetectSequentialN(b, seed, maxCases, 0)
}

// DetectSequentialN is DetectSequential with an explicit pool width:
// 0 = one worker per CPU, 1 = strictly sequential. The result is the same
// at any width; grid runners that already parallelize across bugs pass 1 to
// avoid oversubscribing the machine.
func DetectSequentialN(b faults.Bug, seed int64, maxCases, workers int) DetectionResult {
	cfg := DetectionConfig(b, seed)
	cfg.Cases = maxCases
	cfg.Workers = workers
	res := Run(cfg)
	out := DetectionResult{Bug: b, Checker: CheckerFor(b), Ops: res.Ops}
	if res.Failure != nil {
		out.Detected = true
		out.CasesNeeded = res.Failure.Case + 1
		out.Failure = res.Failure
	}
	return out
}

package shuttle

import (
	"fmt"
	"testing"

	"shardstore/internal/vsync"
)

// TestFindsAtomicityViolation: a classic lost-update race — two threads do
// read-modify-write on a shared counter with the mutex held only for the
// individual accesses, not the whole update. Some interleaving must lose an
// update, and every strategy should find it.
func TestFindsAtomicityViolation(t *testing.T) {
	body := func() {
		var mu vsync.Mutex
		counter := 0
		read := func() int {
			mu.Lock()
			defer mu.Unlock()
			return counter
		}
		write := func(v int) {
			mu.Lock()
			defer mu.Unlock()
			counter = v
		}
		h1 := vsync.Go("inc1", func() { write(read() + 1) })
		h2 := vsync.Go("inc2", func() { write(read() + 1) })
		h1.Join()
		h2.Join()
		if counter != 2 {
			panic(fmt.Sprintf("lost update: counter = %d", counter))
		}
	}
	for _, strat := range []Strategy{NewRandom(7), NewPCT(7, 3, 100), NewDFS()} {
		rep := Explore(Options{Strategy: strat, Iterations: 2000}, body)
		if !rep.Failed() {
			t.Fatalf("%s did not find the lost update in %d iterations", strat.Name(), rep.Iterations)
		}
		f := rep.First()
		if f.Kind != FailPanic {
			t.Fatalf("%s: wrong failure kind %v", strat.Name(), f.Kind)
		}
		// The failure must replay deterministically from its trace.
		if r := Replay(body, f.Trace, 100000); r == nil {
			t.Fatalf("%s: failure did not replay from trace", strat.Name())
		}
	}
}

// TestNoFalsePositive: correct locking never fails.
func TestNoFalsePositive(t *testing.T) {
	body := func() {
		var mu vsync.Mutex
		counter := 0
		inc := func() {
			mu.Lock()
			defer mu.Unlock()
			counter++
		}
		h1 := vsync.Go("inc1", inc)
		h2 := vsync.Go("inc2", inc)
		h1.Join()
		h2.Join()
		if counter != 2 {
			panic("impossible")
		}
	}
	rep := Explore(Options{Strategy: NewRandom(3), Iterations: 500}, body)
	if rep.Failed() {
		t.Fatalf("false positive: %v", rep.First())
	}
}

// TestDetectsDeadlock: the AB-BA lock-order deadlock.
func TestDetectsDeadlock(t *testing.T) {
	body := func() {
		var a, b vsync.Mutex
		h1 := vsync.Go("ab", func() {
			a.Lock()
			vsync.Yield()
			b.Lock()
			b.Unlock()
			a.Unlock()
		})
		h2 := vsync.Go("ba", func() {
			b.Lock()
			vsync.Yield()
			a.Lock()
			a.Unlock()
			b.Unlock()
		})
		h1.Join()
		h2.Join()
	}
	rep := Explore(Options{Strategy: NewRandom(11), Iterations: 2000}, body)
	if !rep.Failed() {
		t.Fatal("deadlock not found")
	}
	if rep.First().Kind != FailDeadlock {
		t.Fatalf("wrong kind: %v", rep.First())
	}
	if r := Replay(body, rep.First().Trace, 100000); r == nil || r.Kind != FailDeadlock {
		t.Fatalf("deadlock did not replay: %v", r)
	}
}

// TestDFSExhaustive: DFS must enumerate the complete bounded space of a tiny
// program and terminate with Exhausted set.
func TestDFSExhaustive(t *testing.T) {
	body := func() {
		var mu vsync.Mutex
		x := 0
		h := vsync.Go("w", func() {
			mu.Lock()
			x++
			mu.Unlock()
		})
		mu.Lock()
		x++
		mu.Unlock()
		h.Join()
		_ = x
	}
	dfs := NewDFS()
	rep := Explore(Options{Strategy: dfs, Iterations: 100000}, body)
	if rep.Failed() {
		t.Fatalf("unexpected failure: %v", rep.First())
	}
	if !rep.Exhausted {
		t.Fatalf("DFS did not exhaust the space in %d iterations", rep.Iterations)
	}
	if rep.Iterations < 2 {
		t.Fatalf("suspiciously few interleavings: %d", rep.Iterations)
	}
	t.Logf("DFS explored %d interleavings, %d total steps", rep.Iterations, rep.TotalSteps)
}

// TestDFSFindsRareInterleaving: a bug hidden behind a specific 3-step
// ordering that random scheduling hits rarely; DFS must find it surely.
func TestDFSFindsRareInterleaving(t *testing.T) {
	body := func() {
		var mu vsync.Mutex
		stage := 0
		step := func(want, next int) {
			mu.Lock()
			if stage == want {
				stage = next
			}
			mu.Unlock()
		}
		h1 := vsync.Go("t1", func() { step(0, 1) })
		h2 := vsync.Go("t2", func() { step(1, 2) })
		h3 := vsync.Go("t3", func() { step(2, 3) })
		h1.Join()
		h2.Join()
		h3.Join()
		if stage == 3 {
			panic("reached the rare ordering")
		}
	}
	rep := Explore(Options{Strategy: NewDFS(), Iterations: 200000}, body)
	if !rep.Failed() {
		t.Fatalf("DFS missed the rare ordering (%d iterations, exhausted=%v)", rep.Iterations, rep.Exhausted)
	}
}

// TestCondVar: producer/consumer with a condition variable completes without
// deadlock under many schedules.
func TestCondVar(t *testing.T) {
	body := func() {
		var mu vsync.Mutex
		cond := vsync.NewCond(&mu)
		queue := 0
		done := false
		consumer := vsync.Go("consumer", func() {
			mu.Lock()
			defer mu.Unlock()
			for queue == 0 && !done {
				cond.Wait()
			}
			if queue > 0 {
				queue--
			}
		})
		producer := vsync.Go("producer", func() {
			mu.Lock()
			queue++
			cond.Broadcast()
			mu.Unlock()
		})
		producer.Join()
		consumer.Join()
	}
	rep := Explore(Options{Strategy: NewRandom(5), Iterations: 500}, body)
	if rep.Failed() {
		t.Fatalf("condvar harness failed: %v", rep.First())
	}
}

// TestRWMutex: readers can share; writer excludes.
func TestRWMutex(t *testing.T) {
	body := func() {
		var rw vsync.RWMutex
		val := 0
		w := vsync.Go("writer", func() {
			rw.Lock()
			val = 1
			rw.Unlock()
		})
		r1 := vsync.Go("reader1", func() {
			rw.RLock()
			v := val
			rw.RUnlock()
			if v != 0 && v != 1 {
				panic("torn read")
			}
		})
		w.Join()
		r1.Join()
		rw.RLock()
		if val != 1 {
			panic("write lost")
		}
		rw.RUnlock()
	}
	rep := Explore(Options{Strategy: NewRandom(9), Iterations: 500}, body)
	if rep.Failed() {
		t.Fatalf("rwmutex harness failed: %v", rep.First())
	}
}

// TestStepBound: an infinite loop with yields trips the step bound rather
// than hanging.
func TestStepBound(t *testing.T) {
	body := func() {
		h := vsync.Go("spinner", func() {
			for {
				vsync.Yield()
			}
		})
		h.Join()
	}
	rep := Explore(Options{Strategy: NewRandom(1), Iterations: 1, MaxSteps: 500}, body)
	if !rep.Failed() || rep.First().Kind != FailStepBound {
		t.Fatalf("step bound not enforced: %+v", rep)
	}
}

// TestPassthroughUnaffected: vsync primitives behave as plain sync outside
// an exploration.
func TestPassthroughUnaffected(t *testing.T) {
	var mu vsync.Mutex
	n := 0
	h := vsync.Go("bg", func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	h.Join()
	mu.Lock()
	if n != 1 {
		t.Fatal("passthrough broken")
	}
	mu.Unlock()
}

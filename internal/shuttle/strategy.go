package shuttle

import (
	"math/rand"
)

// Strategy decides which runnable thread runs at each scheduling point.
type Strategy interface {
	// Pick returns the index into runnable of the thread to run next.
	Pick(s *scheduler, runnable []*thread) int
	// BeginIteration resets per-iteration state. It returns false when the
	// strategy has exhausted its search space (DFS) and exploration should
	// stop.
	BeginIteration(iteration int) bool
	// Name labels the strategy in reports.
	Name() string
}

// Random picks uniformly among runnable threads — the scalable default for
// large harnesses (§6: Shuttle "implements randomized algorithms").
type Random struct {
	Seed int64
	rng  *rand.Rand
}

// NewRandom returns a Random strategy.
func NewRandom(seed int64) *Random { return &Random{Seed: seed} }

// BeginIteration implements Strategy.
func (r *Random) BeginIteration(iteration int) bool {
	r.rng = rand.New(rand.NewSource(r.Seed + int64(iteration)*0x9E3779B9))
	return true
}

// Pick implements Strategy.
func (r *Random) Pick(_ *scheduler, runnable []*thread) int {
	if len(runnable) == 1 {
		return 0
	}
	return r.rng.Intn(len(runnable))
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// PCT implements probabilistic concurrency testing [5]: threads get random
// priorities, the scheduler always runs the highest-priority runnable
// thread, and at Depth-1 random step indices the current thread's priority
// is demoted below all others. PCT finds bugs of depth d with probability
// ≥ 1/(n·k^(d-1)).
type PCT struct {
	Seed  int64
	Depth int
	// MaxSteps estimates k (the schedule length) for change-point placement.
	MaxSteps int

	rng          *rand.Rand
	changePoints map[int]bool
	demoted      map[int]int // thread id -> demotion order (lower = later demotion = lower priority)
	demoteSeq    int
	step         int
}

// NewPCT returns a PCT strategy of the given depth.
func NewPCT(seed int64, depth, maxSteps int) *PCT {
	return &PCT{Seed: seed, Depth: depth, MaxSteps: maxSteps}
}

// BeginIteration implements Strategy.
func (p *PCT) BeginIteration(iteration int) bool {
	p.rng = rand.New(rand.NewSource(p.Seed + int64(iteration)*0x9E3779B9))
	p.changePoints = make(map[int]bool)
	for i := 0; i < p.Depth-1; i++ {
		p.changePoints[p.rng.Intn(maxI(p.MaxSteps, 1))] = true
	}
	p.demoted = make(map[int]int)
	p.demoteSeq = 0
	p.step = 0
	return true
}

// priorityFor assigns a random base priority to a newly spawned thread.
func (p *PCT) priorityFor(id int) int {
	if p.rng == nil {
		return id
	}
	return p.rng.Intn(1 << 20)
}

// Pick implements Strategy.
func (p *PCT) Pick(s *scheduler, runnable []*thread) int {
	p.step++
	best := 0
	for i := 1; i < len(runnable); i++ {
		if p.less(runnable[best], runnable[i]) {
			best = i
		}
	}
	if p.changePoints[p.step] {
		// Demote the chosen thread below every other thread.
		p.demoteSeq++
		p.demoted[runnable[best].id] = p.demoteSeq
		// Re-pick after demotion.
		best = 0
		for i := 1; i < len(runnable); i++ {
			if p.less(runnable[best], runnable[i]) {
				best = i
			}
		}
	}
	return best
}

// less reports whether a has lower scheduling priority than b.
func (p *PCT) less(a, b *thread) bool {
	da, db := p.demoted[a.id], p.demoted[b.id]
	if (da > 0) != (db > 0) {
		return da > 0 // demoted threads lose
	}
	if da > 0 && db > 0 {
		return da > db // more recently demoted loses
	}
	if a.pctPriority != b.pctPriority {
		return a.pctPriority < b.pctPriority
	}
	return a.id > b.id
}

// Name implements Strategy.
func (p *PCT) Name() string { return "pct" }

// DFS exhaustively enumerates scheduling choices (bounded by MaxIterations
// and the scheduler's step bound) via stateless re-execution: it records the
// choice prefix of the previous run and advances the last choice with
// remaining alternatives, like Loom's depth-first search.
type DFS struct {
	// prefix is the stack of (choice, optionCount) pairs from the last run.
	prefix []dfsChoice
	// pos is the current depth within this iteration.
	pos       int
	exhausted bool
}

type dfsChoice struct {
	choice  int
	options int
}

// NewDFS returns an exhaustive strategy.
func NewDFS() *DFS { return &DFS{} }

// BeginIteration implements Strategy: it backtracks to the deepest choice
// with an untried alternative.
func (d *DFS) BeginIteration(iteration int) bool {
	if iteration == 0 {
		d.pos = 0
		return true
	}
	// Advance the prefix: drop trailing fully-explored choices.
	for len(d.prefix) > 0 {
		last := &d.prefix[len(d.prefix)-1]
		if last.choice+1 < last.options {
			last.choice++
			d.pos = 0
			return true
		}
		d.prefix = d.prefix[:len(d.prefix)-1]
	}
	d.exhausted = true
	return false
}

// Pick implements Strategy.
func (d *DFS) Pick(_ *scheduler, runnable []*thread) int {
	if d.pos < len(d.prefix) {
		c := d.prefix[d.pos]
		d.pos++
		if c.choice < len(runnable) {
			return c.choice
		}
		return 0
	}
	d.prefix = append(d.prefix, dfsChoice{choice: 0, options: len(runnable)})
	d.pos++
	return 0
}

// Exhausted reports whether the whole (bounded) space was explored.
func (d *DFS) Exhausted() bool { return d.exhausted }

// Name implements Strategy.
func (d *DFS) Name() string { return "dfs" }

// Fixed replays a recorded trace deterministically — the replay mechanism
// for failures found by any strategy.
type Fixed struct {
	Trace []int
	pos   int
}

// NewFixed returns a trace-replay strategy.
func NewFixed(trace []int) *Fixed { return &Fixed{Trace: trace} }

// BeginIteration implements Strategy.
func (f *Fixed) BeginIteration(iteration int) bool {
	f.pos = 0
	return iteration == 0
}

// Pick implements Strategy.
func (f *Fixed) Pick(_ *scheduler, runnable []*thread) int {
	if f.pos < len(f.Trace) {
		c := f.Trace[f.pos]
		f.pos++
		if c < len(runnable) {
			return c
		}
	}
	return 0
}

// Name implements Strategy.
func (f *Fixed) Name() string { return "fixed" }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

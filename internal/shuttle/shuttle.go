// Package shuttle is a stateless model checker for concurrent Go code, the
// reproduction of the Shuttle/Loom tools the paper uses for §6. It executes
// a test body whose threads are spawned with vsync.Go and synchronized with
// vsync primitives, serializing execution so that exactly one virtual thread
// runs at a time, and explores different interleavings across iterations:
//
//   - Random: uniformly random scheduling decisions (Shuttle's default);
//   - PCT: probabilistic concurrency testing [Burckhardt et al., ASPLOS'10],
//     with d-1 priority change points, the algorithm the paper cites;
//   - DFS: bounded exhaustive enumeration of all interleavings, the sound
//     Loom-style mode for small harnesses.
//
// The checker detects assertion failures (panics in the body), deadlocks
// (all live threads blocked), and step-bound livelocks, and reports a replay
// trace: the exact sequence of scheduling choices, which the Fixed strategy
// replays deterministically.
package shuttle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shardstore/internal/vsync"
)

// threadState enumerates virtual thread states.
type threadState int

const (
	stateRunnable threadState = iota
	stateBlockedMutex
	stateBlockedCond
	stateBlockedJoin
	stateDone
)

type resumeMsg int

const (
	msgRun resumeMsg = iota
	msgAbort
)

// thread is one virtual thread.
type thread struct {
	id     int
	name   string
	state  threadState
	resume chan resumeMsg

	waitMutex *mutexState // when stateBlockedMutex
	waitRW    *rwState
	waitRead  bool // blocked for read access on waitRW
	waitCond  *condState
	waitJoin  *thread

	joiners []*thread

	// pctPriority is the thread priority under the PCT strategy.
	pctPriority int
}

// event is what a running worker reports back to the scheduler.
type event struct {
	kind     eventKind
	panicErr any
}

type eventKind int

const (
	evYield eventKind = iota // thread hit a schedule point (possibly blocked)
	evDone                   // thread body returned
	evPanic                  // thread body panicked
)

type abortSentinel struct{}

// mutexState is the per-run state attached to a vsync.Mutex.
type mutexState struct {
	runID   uint64
	holder  *thread
	waiters []*thread
}

// rwState is the per-run state attached to a vsync.RWMutex.
type rwState struct {
	runID   uint64
	writer  *thread
	readers int
	waiters []*thread
}

// condState is the per-run state attached to a vsync.Cond.
type condState struct {
	runID   uint64
	waiters []*thread
}

// scheduler runs one iteration. It implements vsync.Runtime.
type scheduler struct {
	runID    uint64
	strategy Strategy
	maxSteps int

	threads []*thread
	current *thread
	events  chan event
	wg      sync.WaitGroup

	steps   int
	trace   []int // chosen runnable-index at every scheduling decision
	nextID  int
	failure *Failure

	// aborted is set when the iteration is being torn down. Worker threads
	// unwind via panic(abortSentinel); any vsync calls their deferred
	// functions make during unwinding (or from threads racing the teardown)
	// become no-ops — the iteration's state is discarded anyway, and the
	// scheduler is no longer reading events.
	aborted atomic.Bool
}

var _ vsync.Runtime = (*scheduler)(nil)

// park hands control back to the scheduler and waits to be resumed. Must be
// called by the current thread.
func (s *scheduler) park(t *thread) {
	s.events <- event{kind: evYield}
	if msg := <-t.resume; msg == msgAbort {
		panic(abortSentinel{})
	}
}

// yieldPoint is a schedule point where t stays runnable.
func (s *scheduler) yieldPoint(t *thread) {
	t.state = stateRunnable
	s.park(t)
}

// currentThread returns the running thread; only the running thread calls
// into the scheduler, so no locking is needed.
func (s *scheduler) currentThread() *thread {
	if s.current == nil {
		panic("shuttle: vsync call from outside a model-checked thread")
	}
	return s.current
}

func (s *scheduler) mutexState(m *vsync.Mutex) *mutexState {
	if st, ok := m.Sched.(*mutexState); ok && st.runID == s.runID {
		return st
	}
	st := &mutexState{runID: s.runID}
	m.Sched = st
	return st
}

func (s *scheduler) rwStateOf(m *vsync.RWMutex) *rwState {
	if st, ok := m.Sched.(*rwState); ok && st.runID == s.runID {
		return st
	}
	st := &rwState{runID: s.runID}
	m.Sched = st
	return st
}

func (s *scheduler) condStateOf(c *vsync.Cond) *condState {
	if st, ok := c.Sched.(*condState); ok && st.runID == s.runID {
		return st
	}
	st := &condState{runID: s.runID}
	c.Sched = st
	return st
}

// MutexLock implements vsync.Runtime.
func (s *scheduler) MutexLock(m *vsync.Mutex) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	s.yieldPoint(t) // racing threads can interleave before the acquire
	st := s.mutexState(m)
	for st.holder != nil {
		t.state = stateBlockedMutex
		t.waitMutex = st
		st.waiters = append(st.waiters, t)
		s.park(t)
		t.waitMutex = nil
	}
	st.holder = t
}

// MutexTryLock implements vsync.Runtime.
func (s *scheduler) MutexTryLock(m *vsync.Mutex) bool {
	if s.aborted.Load() {
		return true
	}
	t := s.currentThread()
	s.yieldPoint(t)
	st := s.mutexState(m)
	if st.holder != nil {
		return false
	}
	st.holder = t
	return true
}

// MutexUnlock implements vsync.Runtime.
func (s *scheduler) MutexUnlock(m *vsync.Mutex) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	st := s.mutexState(m)
	if st.holder != t {
		panic(fmt.Sprintf("shuttle: unlock of mutex not held by %s", t.name))
	}
	st.holder = nil
	for _, w := range st.waiters {
		w.state = stateRunnable
	}
	st.waiters = nil
}

// RLock implements vsync.Runtime.
func (s *scheduler) RLock(m *vsync.RWMutex) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	s.yieldPoint(t)
	st := s.rwStateOf(m)
	for st.writer != nil {
		t.state = stateBlockedMutex
		t.waitRW = st
		t.waitRead = true
		st.waiters = append(st.waiters, t)
		s.park(t)
		t.waitRW = nil
	}
	st.readers++
}

// RUnlock implements vsync.Runtime.
func (s *scheduler) RUnlock(m *vsync.RWMutex) {
	if s.aborted.Load() {
		return
	}
	st := s.rwStateOf(m)
	if st.readers <= 0 {
		panic("shuttle: RUnlock without RLock")
	}
	st.readers--
	if st.readers == 0 {
		for _, w := range st.waiters {
			w.state = stateRunnable
		}
		st.waiters = nil
	}
}

// WLock implements vsync.Runtime.
func (s *scheduler) WLock(m *vsync.RWMutex) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	s.yieldPoint(t)
	st := s.rwStateOf(m)
	for st.writer != nil || st.readers > 0 {
		t.state = stateBlockedMutex
		t.waitRW = st
		t.waitRead = false
		st.waiters = append(st.waiters, t)
		s.park(t)
		t.waitRW = nil
	}
	st.writer = t
}

// WUnlock implements vsync.Runtime.
func (s *scheduler) WUnlock(m *vsync.RWMutex) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	st := s.rwStateOf(m)
	if st.writer != t {
		panic("shuttle: WUnlock of RWMutex not write-held by caller")
	}
	st.writer = nil
	for _, w := range st.waiters {
		w.state = stateRunnable
	}
	st.waiters = nil
}

// CondWait implements vsync.Runtime.
func (s *scheduler) CondWait(c *vsync.Cond) {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	cst := s.condStateOf(c)
	// Atomically release the mutex and enqueue as a waiter.
	mst := s.mutexState(c.L)
	if mst.holder != t {
		panic("shuttle: Cond.Wait without holding its mutex")
	}
	mst.holder = nil
	for _, w := range mst.waiters {
		w.state = stateRunnable
	}
	mst.waiters = nil

	t.state = stateBlockedCond
	t.waitCond = cst
	cst.waiters = append(cst.waiters, t)
	s.park(t)
	t.waitCond = nil

	// Reacquire the mutex.
	for mst.holder != nil {
		t.state = stateBlockedMutex
		t.waitMutex = mst
		mst.waiters = append(mst.waiters, t)
		s.park(t)
		t.waitMutex = nil
	}
	mst.holder = t
}

// CondSignal implements vsync.Runtime.
func (s *scheduler) CondSignal(c *vsync.Cond) {
	if s.aborted.Load() {
		return
	}
	cst := s.condStateOf(c)
	if len(cst.waiters) > 0 {
		w := cst.waiters[0]
		cst.waiters = cst.waiters[1:]
		w.state = stateRunnable
	}
}

// CondBroadcast implements vsync.Runtime.
func (s *scheduler) CondBroadcast(c *vsync.Cond) {
	if s.aborted.Load() {
		return
	}
	cst := s.condStateOf(c)
	for _, w := range cst.waiters {
		w.state = stateRunnable
	}
	cst.waiters = nil
}

// joinHandle implements vsync.Handle.
type joinHandle struct {
	s *scheduler
	t *thread
}

// Join implements vsync.Handle.
func (h *joinHandle) Join() {
	s := h.s
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	for h.t.state != stateDone {
		t.state = stateBlockedJoin
		t.waitJoin = h.t
		h.t.joiners = append(h.t.joiners, t)
		s.park(t)
		t.waitJoin = nil
	}
}

// Spawn implements vsync.Runtime.
func (s *scheduler) Spawn(name string, f func()) vsync.Handle {
	if s.aborted.Load() {
		// Spawns from unwinding defers are discarded with the iteration.
		return noopHandle{}
	}
	t := s.newThread(name)
	s.startThread(t, f)
	return &joinHandle{s: s, t: t}
}

type noopHandle struct{}

func (noopHandle) Join() {}

// Yield implements vsync.Runtime.
func (s *scheduler) Yield() {
	if s.aborted.Load() {
		return
	}
	t := s.currentThread()
	s.yieldPoint(t)
}

func (s *scheduler) newThread(name string) *thread {
	t := &thread{
		id:     s.nextID,
		name:   name,
		state:  stateRunnable,
		resume: make(chan resumeMsg, 1),
	}
	s.nextID++
	s.threads = append(s.threads, t)
	if pct, ok := s.strategy.(*PCT); ok {
		t.pctPriority = pct.priorityFor(t.id)
	}
	return t
}

// startThread launches the worker goroutine; it waits for its first resume.
func (s *scheduler) startThread(t *thread, f func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if msg := <-t.resume; msg == msgAbort {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSentinel); ok {
					return
				}
				if s.aborted.Load() {
					return // discard panics raised during teardown
				}
				t.state = stateDone
				s.wakeJoiners(t)
				s.events <- event{kind: evPanic, panicErr: r}
				return
			}
			if s.aborted.Load() {
				return
			}
			t.state = stateDone
			s.wakeJoiners(t)
			s.events <- event{kind: evDone}
		}()
		f()
	}()
}

func (s *scheduler) wakeJoiners(t *thread) {
	for _, j := range t.joiners {
		j.state = stateRunnable
	}
	t.joiners = nil
}

// runnableThreads returns runnable threads in id order. Blocked threads are
// runnable again once their wake condition was satisfied (their state is
// flipped by the waker), so this is a plain state filter.
func (s *scheduler) runnableThreads() []*thread {
	var out []*thread
	for _, t := range s.threads {
		if t.state == stateRunnable {
			out = append(out, t)
		}
	}
	return out
}

func (s *scheduler) liveThreads() []*thread {
	var out []*thread
	for _, t := range s.threads {
		if t.state != stateDone {
			out = append(out, t)
		}
	}
	return out
}

// run executes one iteration: body as thread 0, scheduling until all threads
// finish or a failure occurs. Returns the failure, if any.
func (s *scheduler) run(body func()) *Failure {
	root := s.newThread("main")
	s.startThread(root, body)

	for {
		runnable := s.runnableThreads()
		if len(runnable) == 0 {
			live := s.liveThreads()
			if len(live) == 0 {
				return s.failure // normal completion (failure set on panic)
			}
			names := ""
			for _, t := range live {
				if names != "" {
					names += ", "
				}
				names += fmt.Sprintf("%s(%s)", t.name, blockReason(t))
			}
			f := &Failure{Kind: FailDeadlock, Err: fmt.Sprintf("deadlock: %d threads blocked: %s", len(live), names), Trace: append([]int(nil), s.trace...)}
			s.abort()
			return f
		}
		if s.steps >= s.maxSteps {
			f := &Failure{Kind: FailStepBound, Err: fmt.Sprintf("step bound %d exceeded (livelock?)", s.maxSteps), Trace: append([]int(nil), s.trace...)}
			s.abort()
			return f
		}
		choice := s.strategy.Pick(s, runnable)
		if choice < 0 || choice >= len(runnable) {
			choice = 0
		}
		s.trace = append(s.trace, choice)
		s.steps++
		t := runnable[choice]
		s.current = t
		t.resume <- msgRun
		ev := <-s.events
		s.current = nil
		switch ev.kind {
		case evPanic:
			f := &Failure{Kind: FailPanic, Err: fmt.Sprintf("panic in %s: %v", t.name, ev.panicErr), Trace: append([]int(nil), s.trace...), PanicValue: ev.panicErr}
			s.abort()
			return f
		case evDone, evYield:
			// continue scheduling
		}
	}
}

func blockReason(t *thread) string {
	switch t.state {
	case stateBlockedMutex:
		return "mutex"
	case stateBlockedCond:
		return "condvar"
	case stateBlockedJoin:
		return "join"
	case stateRunnable:
		return "runnable"
	default:
		return "?"
	}
}

// abort terminates all parked threads and waits for every worker to exit.
func (s *scheduler) abort() {
	s.aborted.Store(true)
	for _, t := range s.threads {
		if t.state != stateDone {
			// The buffer guarantees the send never blocks: each thread has
			// at most one outstanding resume message, and a thread that is
			// between sending its event and blocking on resume will still
			// observe the buffered abort.
			t.resume <- msgAbort
		}
	}
	s.wg.Wait()
}

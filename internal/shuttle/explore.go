package shuttle

import (
	"fmt"

	"shardstore/internal/vsync"
)

// FailureKind classifies a model-checking failure.
type FailureKind int

const (
	// FailPanic is an assertion failure (panic) in the body.
	FailPanic FailureKind = iota
	// FailDeadlock means every live thread was blocked.
	FailDeadlock
	// FailStepBound means the iteration exceeded the step budget.
	FailStepBound
)

func (k FailureKind) String() string {
	switch k {
	case FailPanic:
		return "panic"
	case FailDeadlock:
		return "deadlock"
	case FailStepBound:
		return "step-bound"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure describes one failing interleaving.
type Failure struct {
	Kind FailureKind
	Err  string
	// Iteration is the iteration index that failed.
	Iteration int
	// Trace is the scheduling-choice sequence; replay it with NewFixed.
	Trace      []int
	PanicValue any
}

func (f *Failure) String() string {
	return fmt.Sprintf("[%v @ iteration %d, %d scheduling points] %s", f.Kind, f.Iteration, len(f.Trace), f.Err)
}

// Options configures an exploration.
type Options struct {
	// Strategy picks interleavings; defaults to NewRandom(1).
	Strategy Strategy
	// Iterations bounds the number of explored schedules (default 1000).
	// DFS may stop earlier when the space is exhausted.
	Iterations int
	// MaxSteps bounds scheduling decisions per iteration (default 200000).
	MaxSteps int
	// StopAtFirstFailure ends the exploration at the first failure (default
	// behavior; set ContinueAfterFailure to gather more).
	ContinueAfterFailure bool
}

// Report summarizes an exploration.
type Report struct {
	Strategy   string
	Iterations int
	// TotalSteps is the total number of scheduling decisions made.
	TotalSteps int64
	// Exhausted is true when DFS covered the entire bounded space.
	Exhausted bool
	Failures  []*Failure
}

// Failed reports whether any failure was found.
func (r Report) Failed() bool { return len(r.Failures) > 0 }

// First returns the first failure or nil.
func (r Report) First() *Failure {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0]
}

var runCounter uint64

// Explore model-checks body: it runs body repeatedly, each time under a
// different interleaving of its vsync-synchronized threads. body must be
// deterministic modulo scheduling (fresh state every call, seeded
// randomness). Assertions are plain panics inside the body's threads.
//
// Explore installs the scheduler as the process-global vsync runtime for its
// duration, so model-checking explorations must not run concurrently with
// each other or with other vsync users.
func Explore(opts Options, body func()) Report {
	if opts.Strategy == nil {
		opts.Strategy = NewRandom(1)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 1000
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200000
	}
	report := Report{Strategy: opts.Strategy.Name()}

	for i := 0; i < opts.Iterations; i++ {
		if !opts.Strategy.BeginIteration(i) {
			if d, ok := opts.Strategy.(*DFS); ok {
				report.Exhausted = d.Exhausted()
			}
			break
		}
		runCounter++
		s := &scheduler{
			runID:    runCounter,
			strategy: opts.Strategy,
			maxSteps: opts.MaxSteps,
			events:   make(chan event),
		}
		prev := vsync.SetRuntime(s)
		failure := s.run(body)
		vsync.SetRuntime(prev)
		report.Iterations++
		report.TotalSteps += int64(s.steps)
		if failure != nil {
			failure.Iteration = i
			report.Failures = append(report.Failures, failure)
			if !opts.ContinueAfterFailure {
				break
			}
		}
	}
	return report
}

// Replay re-executes body under the exact scheduling trace of a failure and
// returns the failure it reproduces (nil if the trace no longer fails —
// which indicates nondeterminism in the body).
func Replay(body func(), trace []int, maxSteps int) *Failure {
	rep := Explore(Options{Strategy: NewFixed(trace), Iterations: 1, MaxSteps: maxSteps}, body)
	return rep.First()
}

package linearize

import "testing"

func op(client int, in KVInput, out KVOutput, invoke, ret int64) Operation {
	return Operation{Client: client, Input: in, Output: out, Invoke: invoke, Return: ret}
}

func put(k, v string) KVInput { return KVInput{Op: "put", Key: k, Value: v} }
func get(k string) KVInput    { return KVInput{Op: "get", Key: k} }
func del(k string) KVInput    { return KVInput{Op: "delete", Key: k} }
func found(v string) KVOutput { return KVOutput{Value: v, Found: true} }
func absent() KVOutput        { return KVOutput{Found: false} }
func putOK() KVOutput         { return KVOutput{Found: true} }
func delOK() KVOutput         { return KVOutput{Found: false} }

func TestEmptyHistory(t *testing.T) {
	if !Check(KVSpec(), nil).Ok {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialHistory(t *testing.T) {
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(1, get("a"), found("1"), 3, 4),
		op(1, del("a"), delOK(), 5, 6),
		op(1, get("a"), absent(), 7, 8),
	}
	res := Check(KVSpec(), h)
	if !res.Ok {
		t.Fatal("sequential history rejected")
	}
	if len(res.Linearization) != 4 {
		t.Fatalf("witness length %d", len(res.Linearization))
	}
}

func TestConcurrentOverlapEitherOrder(t *testing.T) {
	// put(a=1) overlaps get(a): the get may see absent or 1.
	for _, out := range []KVOutput{absent(), found("1")} {
		h := []Operation{
			op(1, put("a", "1"), putOK(), 1, 10),
			op(2, get("a"), out, 2, 9),
		}
		if !Check(KVSpec(), h).Ok {
			t.Fatalf("overlapping get seeing %v must be linearizable", out)
		}
	}
}

func TestStaleReadNotLinearizable(t *testing.T) {
	// put(a=1) completed before get(a) started, so absent is illegal.
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(2, get("a"), absent(), 3, 4),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("stale read accepted")
	}
}

func TestLostUpdateNotLinearizable(t *testing.T) {
	// Two sequential puts, then a read of the first value: illegal.
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(1, put("a", "2"), putOK(), 3, 4),
		op(2, get("a"), found("1"), 5, 6),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("lost update accepted")
	}
}

func TestPhantomValueNotLinearizable(t *testing.T) {
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(2, get("a"), found("42"), 3, 4),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("phantom value accepted")
	}
}

func TestResurrectionNotLinearizable(t *testing.T) {
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(1, del("a"), delOK(), 3, 4),
		op(2, get("a"), found("1"), 5, 6),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("resurrected value accepted")
	}
}

func TestInterleavedClients(t *testing.T) {
	// Three clients with overlapping windows; a valid schedule exists.
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 6),
		op(2, put("a", "2"), putOK(), 2, 7),
		op(3, get("a"), found("2"), 8, 9),
		op(3, get("a"), found("2"), 10, 11),
	}
	res := Check(KVSpec(), h)
	if !res.Ok {
		t.Fatal("valid interleaving rejected")
	}
}

func TestFlickerNotLinearizable(t *testing.T) {
	// Two reads after both puts completed must agree with a single order:
	// reading 2 then 1 means the puts' order flip-flopped.
	h := []Operation{
		op(1, put("a", "1"), putOK(), 1, 2),
		op(2, put("a", "2"), putOK(), 3, 4),
		op(3, get("a"), found("2"), 5, 6),
		op(3, get("a"), found("1"), 7, 8),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("flip-flopping reads accepted")
	}
}

func TestErrorOutputRejected(t *testing.T) {
	h := []Operation{
		op(1, get("a"), KVOutput{Err: true}, 1, 2),
	}
	if Check(KVSpec(), h).Ok {
		t.Fatal("errored op accepted")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	done := r.Begin(1, put("a", "1"))
	done(putOK())
	done2 := r.Begin(2, get("a"))
	done2(found("1"))
	h := r.History()
	if len(h) != 2 {
		t.Fatalf("history length %d", len(h))
	}
	if h[0].Invoke >= h[0].Return || h[0].Return >= h[1].Invoke {
		t.Fatalf("bad timestamps: %+v", h)
	}
	if !Check(KVSpec(), h).Ok {
		t.Fatal("recorded history rejected")
	}
}

func TestMemoizationHandlesWideHistories(t *testing.T) {
	// 12 concurrent puts to distinct keys followed by consistent reads:
	// naive search is 12! orders; memoization must keep this fast.
	var h []Operation
	for i := 0; i < 12; i++ {
		k := string(rune('a' + i))
		h = append(h, op(i, put(k, "v"), putOK(), 1, 100))
	}
	for i := 0; i < 12; i++ {
		k := string(rune('a' + i))
		h = append(h, op(20+i, get(k), found("v"), 101+int64(i)*2, 102+int64(i)*2))
	}
	res := Check(KVSpec(), h)
	if !res.Ok {
		t.Fatal("wide history rejected")
	}
	t.Logf("explored %d states", res.StatesExplored)
}

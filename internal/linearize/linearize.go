// Package linearize checks recorded concurrent histories for
// linearizability against a sequential model (Herlihy & Wing [19]), the
// correctness condition §6 of the paper targets: "concurrent executions of
// ShardStore are linearizable with respect to the sequential reference
// models".
//
// The checker implements the Wing–Gong tree search with memoization on
// (linearized-set, model-state) pairs, which is exact and fast enough for
// the short histories model-checking harnesses produce.
package linearize

import (
	"fmt"
	"sort"
	"strings"

	"shardstore/internal/vsync"
)

// Spec is the sequential specification.
type Spec struct {
	// Init returns the initial model state. States must be treated as
	// immutable: Step returns a fresh state.
	Init func() any
	// Step applies input to state, returning the output and the next state.
	Step func(state any, input any) (output any, next any)
	// Equal compares an actual operation output with the model's.
	Equal func(modelOutput, actual any) bool
	// Key serializes a state for memoization.
	Key func(state any) string
}

// Operation is one completed operation in a history.
type Operation struct {
	// Client identifies the calling thread (for readability only).
	Client int
	// Input describes the call; Output its observed result.
	Input  any
	Output any
	// Invoke and Return are logical timestamps: Invoke < Return, and
	// operation A happens-before B iff A.Return < B.Invoke.
	Invoke int64
	Return int64
}

func (op Operation) String() string {
	return fmt.Sprintf("c%d[%d,%d] %v -> %v", op.Client, op.Invoke, op.Return, op.Input, op.Output)
}

// Result reports a linearizability check.
type Result struct {
	Ok bool
	// Linearization is a witness order (indexes into the history) when Ok.
	Linearization []int
	// StatesExplored counts search nodes (for the experiment tables).
	StatesExplored int
}

// Check decides whether history is linearizable with respect to spec.
func Check(spec Spec, history []Operation) Result {
	n := len(history)
	if n == 0 {
		return Result{Ok: true}
	}
	if n > 62 {
		panic("linearize: history too long (max 62 operations)")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Determinize search order.
	sort.Slice(idx, func(a, b int) bool { return history[idx[a]].Invoke < history[idx[b]].Invoke })

	seen := make(map[string]bool)
	explored := 0

	var dfs func(mask uint64, state any, order []int) []int
	dfs = func(mask uint64, state any, order []int) []int {
		if mask == (uint64(1)<<uint(n))-1 {
			return order
		}
		memoKey := fmt.Sprintf("%x|%s", mask, spec.Key(state))
		if seen[memoKey] {
			return nil
		}
		seen[memoKey] = true
		explored++
		// minReturn is the earliest return among pending (un-linearized)
		// operations; an operation is a legal next linearization point only
		// if it was invoked before every pending operation returned.
		minReturn := int64(1<<62 - 1)
		for _, i := range idx {
			if mask&(1<<uint(i)) == 0 && history[i].Return < minReturn {
				minReturn = history[i].Return
			}
		}
		for _, i := range idx {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			op := history[i]
			if op.Invoke > minReturn {
				continue // not minimal: another pending op returned first
			}
			out, next := spec.Step(state, op.Input)
			if !spec.Equal(out, op.Output) {
				continue
			}
			if w := dfs(mask|(1<<uint(i)), next, append(append([]int(nil), order...), i)); w != nil {
				return w
			}
		}
		return nil
	}
	witness := dfs(0, spec.Init(), nil)
	return Result{Ok: witness != nil, Linearization: witness, StatesExplored: explored}
}

// Recorder collects a concurrent history from instrumented threads. It is
// safe for use inside shuttle explorations (logical time advances at every
// record call).
type Recorder struct {
	mu    vsync.Mutex
	clock int64
	ops   []Operation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin records an invocation and returns a completion callback; call it
// with the observed output when the operation returns.
func (r *Recorder) Begin(client int, input any) func(output any) {
	r.mu.Lock()
	r.clock++
	invoke := r.clock
	r.mu.Unlock()
	return func(output any) {
		r.mu.Lock()
		r.clock++
		r.ops = append(r.ops, Operation{Client: client, Input: input, Output: output, Invoke: invoke, Return: r.clock})
		r.mu.Unlock()
	}
}

// History returns the completed operations.
func (r *Recorder) History() []Operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Operation(nil), r.ops...)
}

// FormatHistory renders a history for failure reports.
func FormatHistory(ops []Operation) string {
	sorted := append([]Operation(nil), ops...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Invoke < sorted[b].Invoke })
	var b strings.Builder
	for _, op := range sorted {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	return b.String()
}

// --- A ready-made spec for key-value stores ---

// KVInput is a put/get/delete/scan call on a key-value store. Scan reads the
// ordered range [Key, End) bounded by Limit (0 = unbounded; empty End
// unbounded), the cursor contract of store.OrderedKV.
type KVInput struct {
	Op    string // "put", "get", "delete", "scan"
	Key   string
	Value string
	End   string
	Limit int
}

func (in KVInput) String() string {
	switch in.Op {
	case "put":
		return fmt.Sprintf("put(%s=%s)", in.Key, in.Value)
	case "scan":
		return fmt.Sprintf("scan([%s..%s), limit %d)", in.Key, in.End, in.Limit)
	default:
		return fmt.Sprintf("%s(%s)", in.Op, in.Key)
	}
}

// KVOutput is the observed result: for gets, the value or absence; for
// scans, the page rendered as sorted "k=v" pairs joined by NUL, plus the
// continuation flag.
type KVOutput struct {
	Value string
	Found bool
	Err   bool
	More  bool
}

func (out KVOutput) String() string {
	if out.Err {
		return "<error>"
	}
	if !out.Found {
		return "<absent>"
	}
	return out.Value
}

type kvState struct {
	// immutable persistent map encoded as sorted "k=v" strings
	repr string
}

// KVSpec returns the sequential specification of a key-value store: the
// reference model of §3.2 packaged for the linearizability checker.
func KVSpec() Spec {
	parse := func(s string) map[string]string {
		m := make(map[string]string)
		if s == "" {
			return m
		}
		for _, kv := range strings.Split(s, "\x00") {
			i := strings.IndexByte(kv, '=')
			m[kv[:i]] = kv[i+1:]
		}
		return m
	}
	render := func(m map[string]string) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+m[k])
		}
		return strings.Join(parts, "\x00")
	}
	return Spec{
		Init: func() any { return kvState{} },
		Step: func(state, input any) (any, any) {
			st := state.(kvState)
			in := input.(KVInput)
			m := parse(st.repr)
			switch in.Op {
			case "put":
				m[in.Key] = in.Value
				return KVOutput{Found: true}, kvState{repr: render(m)}
			case "delete":
				delete(m, in.Key)
				return KVOutput{Found: false}, kvState{repr: render(m)}
			case "scan":
				keys := make([]string, 0, len(m))
				for k := range m {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var page []string
				more := false
				for _, k := range keys {
					if k < in.Key || (in.End != "" && k >= in.End) {
						continue
					}
					if in.Limit > 0 && len(page) >= in.Limit {
						more = true
						break
					}
					page = append(page, k+"="+m[k])
				}
				return KVOutput{Value: strings.Join(page, "\x00"), Found: true, More: more}, st
			default: // get
				v, ok := m[in.Key]
				return KVOutput{Value: v, Found: ok}, st
			}
		},
		Equal: func(modelOut, actual any) bool {
			mo := modelOut.(KVOutput)
			ao := actual.(KVOutput)
			if ao.Err {
				return false // failed operations are never linearizable here
			}
			if mo.Found != ao.Found || mo.More != ao.More {
				return false
			}
			return !mo.Found || mo.Value == ao.Value
		},
		Key: func(state any) string { return state.(kvState).repr },
	}
}

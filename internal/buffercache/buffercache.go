// Package buffercache implements the chunk-granularity read cache that sits
// between the chunk store and the disk.
//
// Entries are keyed by chunk locator (extent, offset). Because extents are
// recycled by reclamation — reset and then rewritten from offset zero — a
// locator can be reborn naming different data, so the cache must be drained
// for an extent when it is reset. Failing to do so is the paper's bug #2
// ("cache was not correctly drained after resetting an extent"), and the
// paper's §8.3 missed-bug anecdote (a cache sized so large that tests never
// exercised the miss path) motivates the hit/miss coverage probes.
package buffercache

import (
	"fmt"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// Key identifies a cached chunk by physical position.
type Key struct {
	Extent disk.ExtentID
	Offset int
}

// Stats counts cache activity. It is a thin snapshot of the cache's obs
// registry counters; the cache keeps no counter state of its own.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	Drains    uint64
}

// cacheMetrics holds the obs handles, resolved once at construction.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	inserts   *obs.Counter
	evictions *obs.Counter
	drains    *obs.Counter
	entries   *obs.Gauge
}

type entry struct {
	key      Key
	ownerKey string
	data     []byte
	prev     *entry
	next     *entry
}

// Cache is a fixed-capacity LRU cache of chunk payloads. It is safe for
// concurrent use and model-checkable.
type Cache struct {
	mu       vsync.Mutex
	cov      *coverage.Registry
	obs      *obs.Obs
	met      cacheMetrics
	capacity int
	entries  map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
}

// New creates a cache holding up to capacity chunks. Capacity 0 disables
// caching entirely (every lookup misses). A nil o gives the cache a private
// registry so Stats keeps working standalone.
func New(capacity int, cov *coverage.Registry, o *obs.Obs) *Cache {
	if o == nil {
		o = obs.New(nil)
	}
	return &Cache{
		cov:      cov,
		obs:      o,
		capacity: capacity,
		entries:  make(map[Key]*entry),
		met: cacheMetrics{
			hits:      o.Counter("cache.hits"),
			misses:    o.Counter("cache.misses"),
			inserts:   o.Counter("cache.inserts"),
			evictions: o.Counter("cache.evictions"),
			drains:    o.Counter("cache.drains"),
			entries:   o.Gauge("cache.entries"),
		},
	}
}

// Get returns the cached payload and owning key for k, or (nil, "") if
// absent. The returned slice must not be mutated.
func (c *Cache) Get(k Key) ([]byte, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.met.misses.Inc()
		c.cov.Hit("cache.miss")
		return nil, ""
	}
	c.met.hits.Inc()
	c.cov.Hit("cache.hit")
	c.moveToFrontLocked(e)
	return e.data, e.ownerKey
}

// Insert caches data (owned by ownerKey) under k, evicting the least
// recently used entry when over capacity. data is copied.
func (c *Cache) Insert(k Key, ownerKey string, data []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.data = append([]byte(nil), data...)
		e.ownerKey = ownerKey
		c.moveToFrontLocked(e)
		return
	}
	e := &entry{key: k, ownerKey: ownerKey, data: append([]byte(nil), data...)}
	c.entries[k] = e
	c.pushFrontLocked(e)
	c.met.inserts.Inc()
	for len(c.entries) > c.capacity {
		lru := c.tail
		c.removeLocked(lru)
		delete(c.entries, lru.key)
		c.met.evictions.Inc()
		c.cov.Hit("cache.evict")
	}
	c.met.entries.Set(int64(len(c.entries)))
}

// Invalidate removes the entry for k, if any.
func (c *Cache) Invalidate(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.removeLocked(e)
		delete(c.entries, k)
		c.met.entries.Set(int64(len(c.entries)))
	}
}

// DrainExtent removes every entry on ext. Called when an extent is reset so
// recycled locators cannot serve stale data (bug #2 site — the caller skips
// this under the seeded fault).
func (c *Cache) DrainExtent(ext disk.ExtentID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met.drains.Inc()
	c.cov.Hit("cache.drain")
	for k, e := range c.entries {
		if k.Extent == ext {
			c.removeLocked(e)
			delete(c.entries, k)
		}
	}
	c.met.entries.Set(int64(len(c.entries)))
	if c.obs.Tracing() {
		c.obs.Record("cache", "drain_extent", fmt.Sprintf("e%d", ext), "ok", 0)
	}
}

// DrainAll empties the cache.
func (c *Cache) DrainAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.head, c.tail = nil, nil
	c.met.entries.Set(0)
}

// Len returns the number of cached chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters (reading the obs registry).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.met.hits.Value(),
		Misses:    c.met.misses.Value(),
		Inserts:   c.met.inserts.Value(),
		Evictions: c.met.evictions.Value(),
		Drains:    c.met.drains.Value(),
	}
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.removeLocked(e)
	c.pushFrontLocked(e)
}

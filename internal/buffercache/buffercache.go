// Package buffercache implements the chunk-granularity read cache that sits
// between the chunk store and the disk.
//
// Entries are keyed by chunk locator (extent, offset). Because extents are
// recycled by reclamation — reset and then rewritten from offset zero — a
// locator can be reborn naming different data, so the cache must be drained
// for an extent when it is reset. Failing to do so is the paper's bug #2
// ("cache was not correctly drained after resetting an extent"), and the
// paper's §8.3 missed-bug anecdote (a cache sized so large that tests never
// exercised the miss path) motivates the hit/miss coverage probes.
package buffercache

import (
	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/vsync"
)

// Key identifies a cached chunk by physical position.
type Key struct {
	Extent disk.ExtentID
	Offset int
}

// Stats counts cache activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	Drains    uint64
}

type entry struct {
	key      Key
	ownerKey string
	data     []byte
	prev     *entry
	next     *entry
}

// Cache is a fixed-capacity LRU cache of chunk payloads. It is safe for
// concurrent use and model-checkable.
type Cache struct {
	mu       vsync.Mutex
	cov      *coverage.Registry
	capacity int
	entries  map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	stats    Stats
}

// New creates a cache holding up to capacity chunks. Capacity 0 disables
// caching entirely (every lookup misses).
func New(capacity int, cov *coverage.Registry) *Cache {
	return &Cache{
		cov:      cov,
		capacity: capacity,
		entries:  make(map[Key]*entry),
	}
}

// Get returns the cached payload and owning key for k, or (nil, "") if
// absent. The returned slice must not be mutated.
func (c *Cache) Get(k Key) ([]byte, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		c.cov.Hit("cache.miss")
		return nil, ""
	}
	c.stats.Hits++
	c.cov.Hit("cache.hit")
	c.moveToFrontLocked(e)
	return e.data, e.ownerKey
}

// Insert caches data (owned by ownerKey) under k, evicting the least
// recently used entry when over capacity. data is copied.
func (c *Cache) Insert(k Key, ownerKey string, data []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.data = append([]byte(nil), data...)
		e.ownerKey = ownerKey
		c.moveToFrontLocked(e)
		return
	}
	e := &entry{key: k, ownerKey: ownerKey, data: append([]byte(nil), data...)}
	c.entries[k] = e
	c.pushFrontLocked(e)
	c.stats.Inserts++
	for len(c.entries) > c.capacity {
		lru := c.tail
		c.removeLocked(lru)
		delete(c.entries, lru.key)
		c.stats.Evictions++
		c.cov.Hit("cache.evict")
	}
}

// Invalidate removes the entry for k, if any.
func (c *Cache) Invalidate(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.removeLocked(e)
		delete(c.entries, k)
	}
}

// DrainExtent removes every entry on ext. Called when an extent is reset so
// recycled locators cannot serve stale data (bug #2 site — the caller skips
// this under the seeded fault).
func (c *Cache) DrainExtent(ext disk.ExtentID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Drains++
	c.cov.Hit("cache.drain")
	for k, e := range c.entries {
		if k.Extent == ext {
			c.removeLocked(e)
			delete(c.entries, k)
		}
	}
}

// DrainAll empties the cache.
func (c *Cache) DrainAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.head, c.tail = nil, nil
}

// Len returns the number of cached chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.removeLocked(e)
	c.pushFrontLocked(e)
}

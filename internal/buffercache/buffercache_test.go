package buffercache

import (
	"bytes"
	"testing"
)

func TestInsertGet(t *testing.T) {
	c := New(4, nil, nil)
	k := Key{Extent: 1, Offset: 128}
	c.Insert(k, "owner", []byte("data"))
	got, owner := c.Get(k)
	if !bytes.Equal(got, []byte("data")) || owner != "owner" {
		t.Fatalf("get: %q %q", got, owner)
	}
	if v, _ := c.Get(Key{Extent: 2}); v != nil {
		t.Fatal("phantom hit")
	}
}

func TestInsertCopiesData(t *testing.T) {
	c := New(4, nil, nil)
	data := []byte{1, 2, 3}
	c.Insert(Key{}, "k", data)
	data[0] = 99
	got, _ := c.Get(Key{})
	if got[0] != 1 {
		t.Fatal("cache aliases caller's buffer")
	}
}

func TestOverwriteUpdatesEntry(t *testing.T) {
	c := New(4, nil, nil)
	k := Key{Extent: 1}
	c.Insert(k, "a", []byte{1})
	c.Insert(k, "b", []byte{2})
	got, owner := c.Get(k)
	if got[0] != 2 || owner != "b" {
		t.Fatalf("overwrite: %v %q", got, owner)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, nil, nil)
	c.Insert(Key{Extent: 1}, "1", []byte{1})
	c.Insert(Key{Extent: 2}, "2", []byte{2})
	c.Get(Key{Extent: 1}) // touch 1: 2 becomes LRU
	c.Insert(Key{Extent: 3}, "3", []byte{3})
	if v, _ := c.Get(Key{Extent: 2}); v != nil {
		t.Fatal("LRU entry not evicted")
	}
	if v, _ := c.Get(Key{Extent: 1}); v == nil {
		t.Fatal("recently used entry evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions: %d", c.Stats().Evictions)
	}
}

func TestZeroCapacityDisablesCaching(t *testing.T) {
	c := New(0, nil, nil)
	c.Insert(Key{}, "k", []byte{1})
	if v, _ := c.Get(Key{}); v != nil {
		t.Fatal("zero-capacity cache stored data")
	}
}

func TestDrainExtent(t *testing.T) {
	c := New(8, nil, nil)
	c.Insert(Key{Extent: 1, Offset: 0}, "a", []byte{1})
	c.Insert(Key{Extent: 1, Offset: 128}, "b", []byte{2})
	c.Insert(Key{Extent: 2, Offset: 0}, "c", []byte{3})
	c.DrainExtent(1)
	if v, _ := c.Get(Key{Extent: 1, Offset: 0}); v != nil {
		t.Fatal("extent 1 entry survived drain")
	}
	if v, _ := c.Get(Key{Extent: 1, Offset: 128}); v != nil {
		t.Fatal("extent 1 entry survived drain")
	}
	if v, _ := c.Get(Key{Extent: 2, Offset: 0}); v == nil {
		t.Fatal("extent 2 entry drained")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8, nil, nil)
	c.Insert(Key{Extent: 1}, "a", []byte{1})
	c.Invalidate(Key{Extent: 1})
	c.Invalidate(Key{Extent: 5}) // absent: no-op
	if c.Len() != 0 {
		t.Fatalf("len: %d", c.Len())
	}
}

func TestDrainAll(t *testing.T) {
	c := New(8, nil, nil)
	for i := 0; i < 5; i++ {
		c.Insert(Key{Extent: 1, Offset: i * 10}, "k", []byte{byte(i)})
	}
	c.DrainAll()
	if c.Len() != 0 {
		t.Fatalf("len after drain all: %d", c.Len())
	}
	// The LRU list must be consistent after a full drain.
	c.Insert(Key{Extent: 9}, "x", []byte{9})
	if v, _ := c.Get(Key{Extent: 9}); v == nil {
		t.Fatal("insert after drain failed")
	}
}

func TestStatsCounting(t *testing.T) {
	c := New(2, nil, nil)
	c.Insert(Key{Extent: 1}, "a", []byte{1})
	c.Get(Key{Extent: 1})
	c.Get(Key{Extent: 2})
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestEvictionChurn(t *testing.T) {
	// Exercise the intrusive list under heavy churn; detects broken links.
	c := New(8, nil, nil)
	for i := 0; i < 1000; i++ {
		c.Insert(Key{Extent: 1, Offset: i % 24}, "k", []byte{byte(i)})
		if i%3 == 0 {
			c.Get(Key{Extent: 1, Offset: (i + 5) % 24})
		}
		if i%7 == 0 {
			c.Invalidate(Key{Extent: 1, Offset: i % 24})
		}
	}
	if c.Len() > 8 {
		t.Fatalf("over capacity: %d", c.Len())
	}
}

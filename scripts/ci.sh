#!/usr/bin/env bash
# CI gate for the repo: vet, build, full test suite, then the race detector
# over the packages with real concurrency (the worker-pool harness, the
# coverage registry, and the pluggable sync layer).
#
# The -race pass builds with the `race` tag, which makes the long
# deterministic bug-hunt suites skip themselves (see
# internal/core/race_on_test.go) — the detector's value is in the pool and
# registry concurrency paths, not in replaying tens of thousands of
# sequential cases 10x slower. The explicit -timeout keeps the race pass
# honest on small single-CPU runners.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== shardlint ./... (soundness + flow passes: syncusage, determinism, mapiter, droppederr, lockorder, unlockpath, stagevocab, obscomplete)"
go run ./cmd/shardlint -v ./...

echo "== shardlint waiver budget (inventory must match lint_waivers.txt exactly)"
live_waivers=$(go run ./cmd/shardlint -waivers ./...)
committed_waivers=$(grep -v '^#' lint_waivers.txt | sed '/^$/d')
if ! diff -u <(echo "$committed_waivers") <(echo "$live_waivers"); then
    echo "waiver inventory drifted from lint_waivers.txt:" >&2
    echo "regenerate with: go run ./cmd/shardlint -waivers ./... and justify the diff in review" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (core, coverage, vsync, scrub)"
go test -race -timeout 600s ./internal/core/... ./internal/coverage/... ./internal/vsync/... ./internal/scrub/...

echo "== go test -race (obs + rpc: registry hot paths vs snapshot/metrics readers)"
go test -race -timeout 300s ./internal/obs/... ./internal/rpc/...

echo "== rpc v2 hammer -race (one client, 8 goroutines, depth-64 pipelines)"
go test -race -timeout 300s -run 'TestSharedClientPipelineHammer|TestOutOfOrderCompletion' -count=1 ./internal/rpc/

echo "== rpc v2 throughput gate (pipelined >= 4x lock-step; skipped under -race by design)"
go test -timeout 300s -run 'TestPipelineThroughputGain' -count=1 -v ./internal/rpc/ | grep -E 'ops/s|ok  |PASS|FAIL'

echo "== observability determinism gate (obs on/off: same verdicts, same disk bytes)"
go test -run 'TestObservabilityDeterminismGate' -count=1 ./internal/core/

echo "== trace determinism gate (spans on/off: same verdicts, same disk bytes)"
go test -run 'TestTraceDeterminismGate' -count=1 ./internal/core/

echo "== group-commit throughput gate (>= 3x puts/sec at 8 writers; skipped under -race by design)"
go test -timeout 300s -run 'TestGroupCommitThroughputGate' -count=1 -v . | grep -E 'puts/sec|ok  |PASS|FAIL'

echo "== compaction read-amplification gate (64-run keyspace quiesces to <= level budget)"
go test -run 'TestCompactionReadAmplificationGate' -count=1 -v . | grep -E 'runs/get|ok  |PASS|FAIL'

echo "== compaction-vs-foreground hammer -race (durable steps against puts/gets on real goroutines)"
go test -race -timeout 300s -run 'TestCompactionForegroundRaceHammer' -count=1 .

echo "== committed benchmark snapshots (BENCH_PR6.json / BENCH_PR7.json parse and are current)"
go test -run 'TestBenchSnapshotCurrent|TestReadBenchSnapshotCurrent' -count=1 .

echo "== scan conformance gate (ordered-map lockstep, detection + honesty, RPC cursor walk)"
go test -run 'TestScanLockstepRandomOps|TestScanCursorWalk|TestScanTornLevelSwapFault|TestScanFaultPathDeadWhenDisarmed' -count=1 ./internal/lsm/
go test -run 'TestScanConformanceSmoke|TestScanTornLevelSwapDetected|TestScanVerdictHonesty' -count=1 ./internal/core/
go test -run 'TestScanOverRPC|TestScanContinuationToken|TestScanIteratorRefetch|TestScanUnsupportedBackend|TestCapabilityOpcodeMatrix' -count=1 ./internal/rpc/

echo "CI PASS"

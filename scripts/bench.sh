#!/usr/bin/env bash
# Regenerates the committed benchmark snapshots:
#  - BENCH_PR6.json (write path): durable-put throughput, p50/p99 put
#    latency, and syncs/op for the lock-step baseline, the group-commit
#    barrier, and the RPC durable-put plane at 1/8/64 concurrent writers.
#    Extra flags are passed through to cmd/benchwrite (e.g. -puts, -flush-us).
#  - BENCH_PR7.json (read path): Get p50/p99 and runs-probed-per-Get on a
#    64-run keyspace before and after the leveled-compaction engine quiesces.
#
# Also prints the put-path and RPC pipeline microbenchmarks so a perf
# regression is visible next to the snapshot diff.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== benchwrite -> BENCH_PR6.json"
go run ./cmd/benchwrite -out BENCH_PR6.json "$@"

echo "== benchread -> BENCH_PR7.json"
go run ./cmd/benchread -out BENCH_PR7.json

echo "== put-path microbenchmarks"
go test -run '^$' -bench 'BenchmarkStorePut$|BenchmarkSoftUpdatesVsWAL' -benchtime=200x .

echo "== rpc benchmarks"
go test -run '^$' -bench 'BenchmarkRPCPipelined' -benchtime=500x ./internal/rpc/

echo "== snapshot validation"
go test -run 'TestBenchSnapshotCurrent|TestReadBenchSnapshotCurrent' -count=1 .

echo "BENCH OK"

// Command shardstore runs a storage node: one key-value store per simulated
// disk behind the shared RPC interface (§2.1 of the paper), with background
// maintenance (index flush, compaction, chunk reclamation, superblock flush)
// on timers. A small client mode exercises a running node, and a check mode
// runs the §4 conformance harness against this build — the paper's
// "run the checks before every deployment" workflow.
//
// Server:
//
//	shardstore -listen 127.0.0.1:7420 -disks 4
//
// Client:
//
//	shardstore -connect 127.0.0.1:7420 put  shard-1 "hello"
//	shardstore -connect 127.0.0.1:7420 get  shard-1
//	shardstore -connect 127.0.0.1:7420 del  shard-1
//	shardstore -connect 127.0.0.1:7420 mget shard-1 shard-2 shard-3
//	shardstore -connect 127.0.0.1:7420 list
//	shardstore -connect 127.0.0.1:7420 stats
//	shardstore -connect 127.0.0.1:7420 metrics
//	shardstore -connect 127.0.0.1:7420 -traced put shard-1 "hello"
//	shardstore -connect 127.0.0.1:7420 trace
//	shardstore -connect 127.0.0.1:7420 slowlog
//
// Check (exit status 1 if a violation is found):
//
//	shardstore -check -cases 5000 -seed 7 -parallel 0
//
// -parallel picks the worker-pool width (0 = one worker per CPU, 1 =
// sequential). The verdict is deterministic: the same -seed and -cases
// produce the same result — including the failing case index and its
// minimized counterexample — at any -parallel value; only wall-clock time
// changes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on the -pprof listener
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/obs"
	"shardstore/internal/rpc"
	"shardstore/internal/store"
)

func main() {
	listen := flag.String("listen", "", "serve on this address")
	connect := flag.String("connect", "", "client mode: connect to this address")
	disks := flag.Int("disks", 4, "number of simulated disks (server mode)")
	maintenance := flag.Duration("maintenance", 250*time.Millisecond, "background maintenance interval")
	scrubInterval := flag.Duration("scrub-interval", time.Second, "background integrity-scrub step interval (0 disables)")
	replicas := flag.Int("replicas", 1, "replicas per chunk within each disk (intra-host redundancy)")
	pprofAddr := flag.String("pprof", "", "serve pprof + /metrics (JSON; ?format=prom for Prometheus) on this address (server mode, opt-in)")
	traceCap := flag.Int("trace", 64, "server mode: retain the last N completed request traces (0 disables tracing)")
	slowThresh := flag.Duration("slow-threshold", 20*time.Millisecond, "server mode: requests at or above this duration land in the slow-op log (0 disables)")
	traced := flag.Bool("traced", false, "client mode: request server-side tracing for this command's requests (trace-id = request id)")
	check := flag.Bool("check", false, "run the conformance check against this build and exit")
	cases := flag.Int("cases", 2000, "check mode: number of random op sequences")
	ops := flag.Int("ops", 40, "check mode: operations per sequence")
	seed := flag.Int64("seed", 1, "check mode: root seed (same seed+cases => same result)")
	parallel := flag.Int("parallel", 0, "check mode: worker-pool width (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	switch {
	case *check:
		runCheck(*cases, *ops, *seed, *parallel)
	case *listen != "":
		runServer(*listen, *disks, *maintenance, *scrubInterval, *replicas, *pprofAddr, *traceCap, *slowThresh)
	case *connect != "":
		runClient(*connect, *traced, flag.Args())
	default:
		fmt.Fprintln(os.Stderr, "need -listen (server), -connect (client), or -check; see -help")
		os.Exit(2)
	}
}

// runCheck is the node's deployment gate: the full §4/§5 conformance
// harness (crashes, reboots, fault injection, control plane) on the worker
// pool, with the first failure minimized into a replayable counterexample.
func runCheck(cases, ops int, seed int64, parallel int) {
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cases <= 0 {
		cases = 200 // mirror core.Config's default so the banner matches the run
	}
	fmt.Printf("shardstore: conformance check, %d sequences x %d ops, seed %d, %d workers\n",
		cases, ops, seed, workers)
	cfg := core.Config{
		Seed:               seed,
		Cases:              cases,
		OpsPerCase:         ops,
		Bias:               core.DefaultBias(),
		EnableCrashes:      true,
		EnableReboots:      true,
		EnableFailures:     true,
		EnableControlPlane: true,
		Minimize:           true,
		Workers:            parallel,
	}
	start := time.Now()
	res := core.Run(cfg)
	elapsed := time.Since(start)
	fmt.Printf("shardstore: %d sequences, %d operations, %d crash states in %s (%.0f cases/sec)\n",
		res.Cases, res.Ops, res.Crashes, elapsed.Round(time.Millisecond),
		float64(res.Cases)/elapsed.Seconds())
	if res.Failure == nil {
		fmt.Println("shardstore: no violations")
		return
	}
	f := res.Failure
	fmt.Printf("shardstore: VIOLATION at case %d (seed %d): %v\n", f.Case, f.Seed, f.Err)
	fmt.Printf("shardstore: minimized to %d ops (from %d):\n", len(f.Minimized), len(f.Seq))
	for i, op := range f.Minimized {
		fmt.Printf("  %2d. %s\n", i, op)
	}
	fmt.Printf("shardstore: minimized violation: %v\n", f.MinimizedErr)
	if trace := f.FormatTrace(); trace != "" {
		fmt.Printf("shardstore: execution trace of the minimized replay:\n%s", trace)
	}
	os.Exit(1)
}

func runServer(addr string, disks int, maintenance, scrubInterval time.Duration, replicas int, pprofAddr string, traceCap int, slowThresh time.Duration) {
	// One node-wide registry on the wall clock: every store, disk, cache, and
	// the rpc layer record into it, so the metrics op (and the optional JSON
	// /metrics endpoint) see the whole node in one snapshot. Request-span
	// tracing attaches here, before stores and server resolve their handles.
	nodeObs := obs.New(obs.NewWallClock())
	if traceCap > 0 {
		nodeObs.WithSpans(traceCap, uint64(slowThresh))
	}
	var stores []*store.Store
	for i := 0; i < disks; i++ {
		cfg := store.Config{Seed: int64(i + 1), Obs: nodeObs}
		// Production-ish geometry: 4 KiB pages, 1 MiB extents, 64 extents.
		cfg.Disk.PageSize = 4096
		cfg.Disk.PagesPerExtent = 256
		cfg.Disk.ExtentCount = 64
		cfg.MaxMemEntries = 128     // auto-flush the memtable
		cfg.AutoFlushThreshold = 64 // auto-flush the superblock
		cfg.Replicas = replicas     // intra-host redundancy for scrub repair
		st, _, err := store.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "disk %d: %v\n", i, err)
			os.Exit(1)
		}
		st.StartScrub(scrubInterval)
		stores = append(stores, st)
	}

	// Background maintenance: the explicit operations the harnesses schedule
	// deterministically run here on a timer, like production ShardStore's
	// background tasks (§2.1).
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(maintenance)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for _, st := range stores {
					_, _ = st.FlushIndex()
					_, _ = st.FlushSuperblock()
					_, _ = st.ReclaimAuto()
					_ = st.SchedStep()
					_ = st.SchedSync()
				}
			}
		}
	}()

	srv := rpc.NewServer(stores, nodeObs)
	bound, err := srv.Serve(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("shardstore: serving %d disks on %s\n", disks, bound)

	if pprofAddr != "" {
		// net/http/pprof registered its handlers on the default mux; add the
		// metrics snapshot next to them and serve both on the side listener.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "prom" {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				_, _ = fmt.Fprint(w, obs.FormatPrometheus(nodeObs.Snapshot()))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(nodeObs.Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("shardstore: pprof + /metrics on http://%s\n", pprofAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	srv.Close()
	for i, st := range stores {
		if err := st.CleanShutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "disk %d shutdown: %v\n", i, err)
		}
	}
	fmt.Println("shardstore: clean shutdown complete")
}

func runClient(addr string, traced bool, args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "client commands: put <id> <value> | get <id> | del <id> | mget <id>... | mdel <id>... | scan [start [end]] | list | stats | metrics | trace | slowlog | flush <disk> | scrub <disk> | scrub-status <disk>")
		os.Exit(2)
	}
	// Every RPC call takes a context; bound the whole CLI interaction so a
	// wedged server cannot hang the tool (the v2 client survives the expiry —
	// not that a one-shot CLI cares, but it is the idiom).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := rpc.DialContext(ctx, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	// -traced sets the per-request negotiation flag: a tracing-enabled
	// server records these requests and echoes the flag back.
	c.SetTracing(traced)

	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}
	switch args[0] {
	case "put":
		if len(args) != 3 {
			fail(fmt.Errorf("usage: put <id> <value>"))
		}
		fail(c.Put(ctx, args[1], []byte(args[2])))
		fmt.Println("ok")
	case "get":
		if len(args) != 2 {
			fail(fmt.Errorf("usage: get <id>"))
		}
		v, err := c.Get(ctx, args[1])
		fail(err)
		fmt.Printf("%s\n", v)
	case "del":
		if len(args) != 2 {
			fail(fmt.Errorf("usage: del <id>"))
		}
		fail(c.Delete(ctx, args[1]))
		fmt.Println("ok")
	case "mget":
		if len(args) < 2 {
			fail(fmt.Errorf("usage: mget <id>..."))
		}
		res, err := c.MGet(ctx, args[1:])
		fail(err)
		for i, r := range res {
			if r.Err != nil {
				fmt.Printf("%s: error: %v\n", args[1+i], r.Err)
			} else {
				fmt.Printf("%s: %s\n", args[1+i], r.Value)
			}
		}
	case "mdel":
		if len(args) < 2 {
			fail(fmt.Errorf("usage: mdel <id>..."))
		}
		errs, err := c.MDelete(ctx, args[1:])
		fail(err)
		for i, e := range errs {
			if e != nil {
				fmt.Printf("%s: error: %v\n", args[1+i], e)
			} else {
				fmt.Printf("%s: ok\n", args[1+i])
			}
		}
	case "scan":
		if len(args) > 3 {
			fail(fmt.Errorf("usage: scan [start [end]]"))
		}
		var start, end string
		if len(args) > 1 {
			start = args[1]
		}
		if len(args) > 2 {
			end = args[2]
		}
		it := c.Iterator(ctx, start, end, 0)
		for it.Next() {
			e := it.Entry()
			fmt.Printf("%s: %s\n", e.Key, e.Value)
		}
		fail(it.Err())
	case "list":
		ids, err := c.List(ctx)
		fail(err)
		for _, id := range ids {
			fmt.Println(id)
		}
	case "stats":
		s, err := c.Stats(ctx)
		fail(err)
		fmt.Printf("disks=%d shards=%d per-disk=%v in-service=%v scrub-rounds=%v scrub-repaired=%v scrub-lost=%v\n",
			s.Disks, s.Shards, s.ShardsPer, s.InService, s.ScrubRounds, s.ScrubRepaired, s.ScrubLost)
	case "metrics":
		snap, err := c.Metrics(ctx)
		fail(err)
		fmt.Print(obs.FormatSnapshot(*snap, obs.UnitNanos))
	case "trace", "slowlog":
		var d *rpc.TraceDump
		var err error
		if args[0] == "trace" {
			d, err = c.Trace(ctx)
		} else {
			d, err = c.SlowLog(ctx)
		}
		fail(err)
		if args[0] == "slowlog" && d.Threshold > 0 {
			fmt.Printf("slow threshold: %s\n", time.Duration(d.Threshold))
		}
		fmt.Print(obs.FormatTraceDump(d.Traces, d.Truncated, obs.UnitNanos))
	case "flush":
		var d int
		if len(args) == 2 {
			_, _ = fmt.Sscanf(args[1], "%d", &d)
		}
		fail(c.Flush(ctx, d))
		fmt.Println("ok")
	case "scrub", "scrub-status":
		var d int
		if len(args) == 2 {
			_, _ = fmt.Sscanf(args[1], "%d", &d)
		}
		var s *rpc.ScrubStatus
		var err error
		if args[0] == "scrub" {
			s, err = c.Scrub(ctx, d)
		} else {
			s, err = c.ScrubStatus(ctx, d)
		}
		fail(err)
		fmt.Printf("rounds=%d scanned=%d verified=%d bad=%d repaired=%d irreparable=%d lost=%v\n",
			s.Rounds, s.KeysScanned, s.FramesVerified, s.BadReplicas, s.Repaired, s.Irreparable, s.LostShards)
	default:
		fail(fmt.Errorf("unknown command %q", args[0]))
	}
}

// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments                  # run everything at full budgets
//	experiments -run fig5        # one experiment
//	experiments -quick           # reduced budgets (CI-sized)
//	experiments -list            # list available experiments
//	experiments -workers 4       # pool width for PBT grids (0 = one per CPU)
//
// Detection results are deterministic at any -workers value (same seed ⇒
// same table); only wall-clock columns change. Shuttle-based model-checking
// experiments always run sequentially regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shardstore/internal/experiments"
)

func main() {
	runName := flag.String("run", "", "run a single experiment by name (default: all)")
	quick := flag.Bool("quick", false, "reduced budgets")
	list := flag.Bool("list", false, "list experiments")
	workers := flag.Int("workers", 0, "worker-pool width for PBT experiments (0 = one per CPU, 1 = sequential)")
	flag.Parse()
	experiments.Workers = *workers

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.Name, e.Paper)
		}
		return
	}

	toRun := experiments.All()
	if *runName != "" {
		e, ok := experiments.Lookup(*runName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runName)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failed := 0
	for _, e := range toRun {
		start := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "\nEXPERIMENT %s FAILED: %v\n", e.Name, err)
			failed++
			continue
		}
		fmt.Printf("\n[%s completed in %s]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

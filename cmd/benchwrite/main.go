// Command benchwrite measures the write path's durable-put performance and
// emits the committed benchmark snapshot (BENCH_PR6.json, see
// internal/benchfmt). It compares the pre-group-commit discipline — every
// put followed by its own lock-step scheduler pump — against the shared
// flush barrier, at 1, 8, and 64 concurrent writers, plus the durable-put
// plane over the v2 RPC protocol. The simulated disk's flush is modeled at
// a fixed latency so the amortization group commit buys is visible in
// wall-clock numbers, not only in syncs/op.
//
// Usage:
//
//	go run ./cmd/benchwrite [-out BENCH_PR6.json] [-puts 40] [-flush-us 300]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"shardstore/internal/benchfmt"
	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/rpc"
	"shardstore/internal/store"

	"context"
)

func newStore() (*store.Store, error) {
	cfg := store.Config{Seed: 1}
	cfg.Disk = disk.Config{PageSize: 128, PagesPerExtent: 512, ExtentCount: 64}
	cfg.MaxMemEntries = 512
	cfg.AutoFlushThreshold = 256
	st, _, err := store.New(cfg)
	return st, err
}

// percentiles returns (p50, p99) in microseconds.
func percentiles(lat []time.Duration) (float64, float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return p(0.50), p(0.99)
}

// runWriters drives `writers` goroutines, each performing putsEach durable
// puts via the put function, and returns the wall time and every per-put
// latency.
func runWriters(writers, putsEach int, put func(w, i int) error) (time.Duration, []time.Duration, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		errs []error
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, putsEach)
			for i := 0; i < putsEach; i++ {
				t0 := time.Now()
				if err := put(w, i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(errs) > 0 {
		return 0, nil, errs[0]
	}
	return elapsed, lats, nil
}

func measureBaseline(writers, putsEach int, val []byte) (benchfmt.Point, error) {
	st, err := newStore()
	if err != nil {
		return benchfmt.Point{}, err
	}
	var mu sync.Mutex
	elapsed, lats, err := runWriters(writers, putsEach, func(w, i int) error {
		mu.Lock()
		defer mu.Unlock()
		if _, err := st.Put(fmt.Sprintf("w%02d-k%02d", w, i%4), val); err != nil {
			return err
		}
		return st.Pump()
	})
	if err != nil {
		return benchfmt.Point{}, err
	}
	p50, p99 := percentiles(lats)
	total := writers * putsEach
	return benchfmt.Point{
		Writers:    writers,
		PutsPerSec: float64(total) / elapsed.Seconds(),
		P50Micros:  p50,
		P99Micros:  p99,
		SyncsPerOp: float64(st.Disk().Stats().Syncs) / float64(total),
	}, nil
}

func measureGroupCommit(writers, putsEach int, val []byte) (benchfmt.Point, error) {
	st, err := newStore()
	if err != nil {
		return benchfmt.Point{}, err
	}
	elapsed, lats, err := runWriters(writers, putsEach, func(w, i int) error {
		d, err := st.Put(fmt.Sprintf("w%02d-k%02d", w, i%4), val)
		if err != nil {
			return err
		}
		return st.WaitDurable(d)
	})
	if err != nil {
		return benchfmt.Point{}, err
	}
	p50, p99 := percentiles(lats)
	total := writers * putsEach
	pt := benchfmt.Point{
		Writers:    writers,
		PutsPerSec: float64(total) / elapsed.Seconds(),
		P50Micros:  p50,
		P99Micros:  p99,
		SyncsPerOp: float64(st.Disk().Stats().Syncs) / float64(total),
	}
	gs := st.Obs().Snapshot().Histograms["sched.group_size"]
	if gs.Count > 0 {
		pt.GroupSizeMean = float64(gs.Sum) / float64(gs.Count)
	}
	return pt, nil
}

func measureRPC(writers, putsEach int, val []byte) (benchfmt.Point, error) {
	st, err := newStore()
	if err != nil {
		return benchfmt.Point{}, err
	}
	srv := rpc.NewServer([]*store.Store{st}, obs.New(obs.NewWallClock()))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return benchfmt.Point{}, err
	}
	defer srv.Close()
	c, err := rpc.Dial(addr)
	if err != nil {
		return benchfmt.Point{}, err
	}
	defer c.Close()
	ctx := context.Background()
	elapsed, lats, err := runWriters(writers, putsEach, func(w, i int) error {
		return c.PutDurable(ctx, fmt.Sprintf("w%02d-k%02d", w, i%4), val)
	})
	if err != nil {
		return benchfmt.Point{}, err
	}
	p50, p99 := percentiles(lats)
	total := writers * putsEach
	return benchfmt.Point{
		Writers:    writers,
		PutsPerSec: float64(total) / elapsed.Seconds(),
		P50Micros:  p50,
		P99Micros:  p99,
		SyncsPerOp: float64(st.Disk().Stats().Syncs) / float64(total),
	}, nil
}

func main() {
	out := flag.String("out", "", "write the JSON snapshot here (default stdout)")
	puts := flag.Int("puts", 320, "total durable puts per measurement (split across writers)")
	flushUS := flag.Int("flush-us", 300, "modeled device-flush latency in microseconds")
	flag.Parse()

	flush := time.Duration(*flushUS) * time.Microsecond
	disk.TestHookPreSync = func() { time.Sleep(flush) }
	defer func() { disk.TestHookPreSync = nil }()

	val := make([]byte, 64)
	rep := benchfmt.Report{Schema: benchfmt.Schema, FlushMicros: *flushUS}
	for _, writers := range []int{1, 8, 64} {
		// Keep the total op count constant across widths so every point
		// stresses the same disk footprint; only concurrency varies.
		putsEach := *puts / writers
		if putsEach == 0 {
			putsEach = 1
		}
		bp, err := measureBaseline(writers, putsEach, val)
		if err != nil {
			fatal(err)
		}
		rep.Baseline = append(rep.Baseline, bp)
		gp, err := measureGroupCommit(writers, putsEach, val)
		if err != nil {
			fatal(err)
		}
		rep.GroupCommit = append(rep.GroupCommit, gp)
		rp, err := measureRPC(writers, putsEach, val)
		if err != nil {
			fatal(err)
		}
		rep.RPC = append(rep.RPC, rp)
		fmt.Fprintf(os.Stderr, "writers=%-3d baseline %8.0f puts/s (%.2f syncs/op)  group %8.0f puts/s (%.2f syncs/op, mean group %.1f)  rpc %8.0f puts/s\n",
			writers, bp.PutsPerSec, bp.SyncsPerOp, gp.PutsPerSec, gp.SyncsPerOp, gp.GroupSizeMean, rp.PutsPerSec)
	}
	if err := rep.Validate(); err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchwrite: %v\n", err)
	os.Exit(1)
}

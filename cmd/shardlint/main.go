// Command shardlint runs the repo's static-analysis pass suite
// (internal/analysis) over the module and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/shardlint ./...
//	go run ./cmd/shardlint -json ./...
//	go run ./cmd/shardlint -waivers ./...
//
// The per-file passes enforce the validation stack's soundness
// side-conditions: syncusage (vsync instrumentation completeness in
// model-checked packages), determinism (no wall clock / global math/rand on
// replayed paths), mapiter (map iteration order must not leak into
// harness-visible state), and droppederr (no discarded disk/extent/chunk IO
// errors). The flow-aware passes check lock discipline and instrumentation
// completeness over the module call graph: lockorder (acquisition-order
// cycles; locks held across blocking operations), unlockpath (every
// acquired lock released on all return/panic paths), stagevocab (span stage
// names match the documented obs vocabulary), and obscomplete (every RPC v2
// opcode has name, dispatch, and histogram coverage).
//
// Findings are acknowledged in place with `//shardlint:allow <pass>
// <reason>`; -waivers prints the full justified inventory in the line
// format committed to lint_waivers.txt, which scripts/ci.sh diffs so the
// waiver set cannot grow without review. -json emits findings as a JSON
// array for tooling; -v reports per-pass wall time to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"shardstore/internal/analysis"
)

// jsonDiag is the machine-readable rendering of one finding.
type jsonDiag struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func main() {
	listPasses := flag.Bool("passes", false, "list the pass suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	waivers := flag.Bool("waivers", false, "print the justified-waiver inventory (lint_waivers.txt format) and exit")
	verbose := flag.Bool("v", false, "report per-pass wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shardlint [-passes] [-json] [-waivers] [-v] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	passes := analysis.AllPasses()
	if *listPasses {
		for _, p := range passes {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardlint: %v\n", err)
		os.Exit(2)
	}
	units, err := analysis.LoadModule(root, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardlint: %v\n", err)
		os.Exit(2)
	}

	if *waivers {
		for _, w := range analysis.Waivers(units, passes) {
			fmt.Println(w)
		}
		return
	}

	diags, timings := analysis.RunPassesTimed(units, passes)
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "shardlint: pass %-12s %s\n", tm.Name, tm.Elapsed.Round(10*time.Microsecond))
		}
	}
	cwd, _ := os.Getwd()
	rel := func(filename string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, filename); err == nil && !filepath.IsAbs(r) {
				return r
			}
		}
		return filename
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Pass:    d.Pass,
				File:    rel(d.Pos.Filename),
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "shardlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s: [%s] %s\n", pos, d.Pass, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shardlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command shardlint runs the repo's static-analysis pass suite
// (internal/analysis) over the module and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/shardlint ./...
//
// The passes enforce the validation stack's soundness side-conditions:
// syncusage (vsync instrumentation completeness in model-checked packages),
// determinism (no wall clock / global math/rand on replayed paths), mapiter
// (map iteration order must not leak into harness-visible state), and
// droppederr (no discarded disk/extent/chunk IO errors). Findings are
// acknowledged in place with `//shardlint:allow <pass> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"shardstore/internal/analysis"
)

func main() {
	listPasses := flag.Bool("passes", false, "list the pass suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shardlint [-passes] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	passes := analysis.AllPasses()
	if *listPasses {
		for _, p := range passes {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardlint: %v\n", err)
		os.Exit(2)
	}
	units, err := analysis.LoadModule(root, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shardlint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.RunPasses(units, passes)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Pass, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "shardlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

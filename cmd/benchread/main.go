// Command benchread measures the read path before and after leveled
// compaction and emits the committed read-path snapshot (BENCH_PR7.json,
// see internal/benchfmt). It builds the worst-case shape for a log-
// structured read — one key per L0 run — measures Get p50/p99 and the
// runs-probed-per-Get read amplification, quiesces the compaction engine,
// and measures again. The simulated disk's page reads are modeled at a
// fixed latency so the probe-count win is visible in wall-clock numbers,
// not only in the counters.
//
// Usage:
//
//	go run ./cmd/benchread [-out BENCH_PR7.json] [-keys 64] [-passes 8] [-read-us 20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"shardstore/internal/benchfmt"
	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/store"
)

func newStore() (*store.Store, error) {
	cfg := store.Config{Seed: 1}
	cfg.Disk = disk.Config{PageSize: 128, PagesPerExtent: 512, ExtentCount: 64}
	cfg.MaxMemEntries = 512
	cfg.AutoFlushThreshold = 256
	// One run per key must survive seeding: keep the flush path's bounded
	// auto-compaction out of the engine's way.
	cfg.MaxRuns = 1024
	cfg.Obs = obs.New(nil)
	st, _, err := store.New(cfg)
	return st, err
}

// percentiles returns (p50, p99) in microseconds.
func percentiles(lat []time.Duration) (float64, float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return p(0.50), p(0.99)
}

// measureReads performs `passes` full sweeps over the keyspace, draining the
// chunk cache before each pass so every Get pays the run-probe cost, and
// returns the populated point.
func measureReads(st *store.Store, keys, passes int) (benchfmt.ReadPoint, error) {
	before := st.Obs().Snapshot()
	lats := make([]time.Duration, 0, keys*passes)
	start := time.Now()
	for p := 0; p < passes; p++ {
		st.DrainCache()
		for i := 0; i < keys; i++ {
			t0 := time.Now()
			if _, err := st.Get(fmt.Sprintf("k%03d", i)); err != nil {
				return benchfmt.ReadPoint{}, fmt.Errorf("get k%03d: %w", i, err)
			}
			lats = append(lats, time.Since(t0))
		}
	}
	elapsed := time.Since(start)
	after := st.Obs().Snapshot()
	gets := after.Counters["lsm.gets"] - before.Counters["lsm.gets"]
	probed := after.Counters["lsm.runs_probed"] - before.Counters["lsm.runs_probed"]
	p50, p99 := percentiles(lats)
	return benchfmt.ReadPoint{
		Runs:             st.Index().RunCount(),
		GetsPerSec:       float64(len(lats)) / elapsed.Seconds(),
		P50Micros:        p50,
		P99Micros:        p99,
		RunsProbedPerGet: float64(probed) / float64(gets),
	}, nil
}

func main() {
	out := flag.String("out", "", "write the JSON snapshot here (default stdout)")
	keys := flag.Int("keys", 64, "keyspace size (also the pre-compaction run count)")
	passes := flag.Int("passes", 8, "full keyspace sweeps per measurement")
	readUS := flag.Int("read-us", 20, "modeled device page-read latency in microseconds")
	flag.Parse()

	read := time.Duration(*readUS) * time.Microsecond
	disk.TestHookPreRead = func() { time.Sleep(read) }
	defer func() { disk.TestHookPreRead = nil }()

	st, err := newStore()
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *keys; i++ {
		if _, err := st.Put(fmt.Sprintf("k%03d", i), make([]byte, 48)); err != nil {
			fatal(err)
		}
		if _, err := st.FlushIndex(); err != nil {
			fatal(err)
		}
	}
	if err := st.Pump(); err != nil {
		fatal(err)
	}

	rep := benchfmt.ReadReport{Schema: benchfmt.ReadSchema, Keys: *keys}
	if rep.Before, err = measureReads(st, *keys, *passes); err != nil {
		fatal(err)
	}

	if _, err := st.CompactQuiesce(1024); err != nil {
		fatal(err)
	}
	snap := st.Obs().Snapshot()
	rep.Compactions = int(snap.Counters["compact.steps"])
	rep.BytesRewritten = snap.Counters["compact.bytes_rewritten"]

	if rep.After, err = measureReads(st, *keys, *passes); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "before: %3d runs, %7.0f gets/s, p50 %6.1fus, p99 %6.1fus, %5.1f runs probed/get\n",
		rep.Before.Runs, rep.Before.GetsPerSec, rep.Before.P50Micros, rep.Before.P99Micros, rep.Before.RunsProbedPerGet)
	fmt.Fprintf(os.Stderr, "after:  %3d runs, %7.0f gets/s, p50 %6.1fus, p99 %6.1fus, %5.1f runs probed/get (%d compactions, %d bytes rewritten)\n",
		rep.After.Runs, rep.After.GetsPerSec, rep.After.P50Micros, rep.After.P99Micros, rep.After.RunsProbedPerGet,
		rep.Compactions, rep.BytesRewritten)

	if err := rep.Validate(); err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchread: %v\n", err)
	os.Exit(1)
}

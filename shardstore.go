// Package shardstore is a Go reproduction of the system and methodology of
// "Using Lightweight Formal Methods to Validate a Key-Value Storage Node in
// Amazon S3" (Bornholt et al., SOSP 2021).
//
// The repository contains two intertwined artifacts:
//
//   - a ShardStore-like key-value storage node — an LSM-tree index over a
//     chunk store over append-only extents, with soft-updates crash
//     consistency (dependency-ordered writebacks), garbage collection,
//     recovery, and an RPC request/control plane (internal/disk, dep,
//     extent, chunk, lsm, buffercache, store, rpc);
//
//   - the paper's lightweight formal-methods validation stack — executable
//     reference models that double as mocks, property-based conformance
//     checking with biasing and automatic minimization, crash-consistency
//     checking over torn crash states, stateless model checking
//     (random/PCT/bounded-DFS) with deterministic replay, and a
//     linearizability checker (internal/model, prop, core, shuttle,
//     linearize), plus the re-seeded catalog of the paper's 16 production
//     bugs (internal/faults) and the experiments that regenerate every
//     table and figure (internal/experiments).
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and the runnable examples under examples/.
package shardstore

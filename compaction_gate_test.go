package shardstore_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/store"
)

// compactGateStore is gateStore with room for a 64-run L0 (MaxRuns high
// enough that the flush path's bounded auto-compaction never fires — the
// engine must earn the read-amplification win itself).
func compactGateStore(t *testing.T) *store.Store {
	t.Helper()
	cfg := store.Config{Seed: 1}
	cfg.Disk = disk.Config{PageSize: 128, PagesPerExtent: 512, ExtentCount: 64}
	cfg.MaxMemEntries = 512
	cfg.AutoFlushThreshold = 256
	cfg.MaxRuns = 128
	cfg.Obs = obs.New(nil)
	st, _, err := store.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// probesPerGet reads every key once and returns the mean number of runs
// probed per Get, from the index's own read-amplification counters.
func probesPerGet(t *testing.T, st *store.Store, keys int) float64 {
	t.Helper()
	before := st.Obs().Snapshot()
	for i := 0; i < keys; i++ {
		if _, err := st.Get(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatalf("get k%03d: %v", i, err)
		}
	}
	after := st.Obs().Snapshot()
	gets := after.Counters["lsm.gets"] - before.Counters["lsm.gets"]
	probed := after.Counters["lsm.runs_probed"] - before.Counters["lsm.runs_probed"]
	if gets == 0 {
		t.Fatal("no gets counted")
	}
	return float64(probed) / float64(gets)
}

// TestCompactionReadAmplificationGate is the PR's acceptance gate: on a
// 64-run keyspace (one key per L0 run, the worst case for a leveled read),
// quiescing the compaction engine must bring the measured runs-probed-per-Get
// from tens down to within the level budget — at most one run per level —
// and every key must still read back its exact bytes.
func TestCompactionReadAmplificationGate(t *testing.T) {
	const keys = 64
	st := compactGateStore(t)
	for i := 0; i < keys; i++ {
		if _, err := st.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{byte(i + 1)}, 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.FlushIndex(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Pump(); err != nil {
		t.Fatal(err)
	}
	if rc := st.Index().RunCount(); rc != keys {
		t.Fatalf("seeding built %d runs, want %d", rc, keys)
	}

	beforeAmp := probesPerGet(t, st, keys)
	if beforeAmp < 8 {
		t.Fatalf("pre-compaction read amplification %.1f runs/get — keyspace not fragmented enough for the gate to mean anything", beforeAmp)
	}

	applied, err := st.CompactQuiesce(256)
	if err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if applied == 0 {
		t.Fatal("compaction engine found no work on a 64-run L0")
	}

	afterAmp := probesPerGet(t, st, keys)
	budget := float64(st.Compactor().Policy().MaxLevels)
	t.Logf("read amplification: %.1f runs/get across %d runs before, %.2f after %d compactions (%d runs, budget %.0f)",
		beforeAmp, keys, afterAmp, applied, st.Index().RunCount(), budget)
	if afterAmp > budget {
		t.Fatalf("post-compaction read amplification %.2f runs/get exceeds the level budget %.0f", afterAmp, budget)
	}
	if rc := st.Index().RunCount(); float64(rc) > budget {
		t.Fatalf("post-compaction run count %d exceeds the level budget %.0f", rc, budget)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		got, err := st.Get(k)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 48)) {
			t.Fatalf("%s corrupted by compaction: len=%d err=%v", k, len(got), err)
		}
	}
}

// TestCompactionForegroundRaceHammer drives real goroutines — durable
// compaction steps against foreground puts and gets — with no shuttle
// scheduler in between, so the race detector sees the production locking.
// scripts/ci.sh runs this under -race.
func TestCompactionForegroundRaceHammer(t *testing.T) {
	st := compactGateStore(t)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for i := 0; i < 8; i++ {
		if _, err := st.Put(fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{byte(i + 1)}, 48)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.FlushIndex(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			if _, err := st.CompactStep(); err != nil {
				t.Error(err)
			}
		}()
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				k := fmt.Sprintf("k%03d", i)
				v := bytes.Repeat([]byte{0xA0 + byte(r)}, 64)
				d, err := st.Put(k, v)
				if err != nil {
					t.Error(err)
					return
				}
				if err := st.WaitDurable(d); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
		go func() {
			defer wg.Done()
			for i := 4; i < 8; i++ {
				if _, err := st.Get(fmt.Sprintf("k%03d", i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Wait()
	}
	if t.Failed() {
		t.Fatal("hammer worker failed")
	}
	for i := 4; i < 8; i++ {
		k := fmt.Sprintf("k%03d", i)
		got, err := st.Get(k)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 48)) {
			t.Fatalf("%s corrupted by hammer: %v", k, err)
		}
	}
}

package shardstore_test

import (
	"os"
	"testing"

	"shardstore/internal/benchfmt"
)

// TestBenchSnapshotCurrent is the CI leg for the committed benchmark
// snapshot: BENCH_PR6.json must exist, parse under the current schema, and
// carry the full 1/8/64-writer trajectory for all three write-path
// disciplines, with the group-commit points actually showing amortization
// at 8+ writers (fewer syncs per op than the lock-step baseline and mean
// commit groups wider than one waiter). Regenerate with scripts/bench.sh.
func TestBenchSnapshotCurrent(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR6.json")
	if err != nil {
		t.Fatalf("committed benchmark snapshot missing: %v (run scripts/bench.sh)", err)
	}
	rep, err := benchfmt.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	wantWriters := []int{1, 8, 64}
	for _, sec := range []struct {
		name string
		pts  []benchfmt.Point
	}{{"baseline", rep.Baseline}, {"group_commit", rep.GroupCommit}, {"rpc", rep.RPC}} {
		if len(sec.pts) != len(wantWriters) {
			t.Fatalf("section %q has %d points, want %d", sec.name, len(sec.pts), len(wantWriters))
		}
		for i, p := range sec.pts {
			if p.Writers != wantWriters[i] {
				t.Fatalf("section %q point %d is writers=%d, want %d", sec.name, i, p.Writers, wantWriters[i])
			}
		}
	}
	for i, gp := range rep.GroupCommit {
		if gp.Writers < 8 {
			continue
		}
		bp := rep.Baseline[i]
		if gp.SyncsPerOp >= bp.SyncsPerOp {
			t.Errorf("writers=%d: group commit %.3f syncs/op >= baseline %.3f — snapshot shows no amortization",
				gp.Writers, gp.SyncsPerOp, bp.SyncsPerOp)
		}
		if gp.GroupSizeMean <= 1 {
			t.Errorf("writers=%d: mean group size %.2f <= 1 — snapshot shows no grouping", gp.Writers, gp.GroupSizeMean)
		}
	}
}

// TestReadBenchSnapshotCurrent is the CI leg for the committed read-path
// snapshot: BENCH_PR7.json must exist, parse under the current read schema
// (which already requires a strict read-amplification improvement), and show
// the compaction engine collapsing the fragmented keyspace to within the
// default level budget. Regenerate with scripts/bench.sh.
func TestReadBenchSnapshotCurrent(t *testing.T) {
	data, err := os.ReadFile("BENCH_PR7.json")
	if err != nil {
		t.Fatalf("committed read benchmark snapshot missing: %v (run scripts/bench.sh)", err)
	}
	rep, err := benchfmt.ParseRead(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Before.Runs != rep.Keys {
		t.Errorf("before_compaction ran against %d runs, want one per key (%d)", rep.Before.Runs, rep.Keys)
	}
	// The default policy's level budget: at most one run per level.
	const budget = 4
	if rep.After.Runs > budget {
		t.Errorf("after_compaction still has %d runs, budget %d", rep.After.Runs, budget)
	}
	if rep.After.RunsProbedPerGet > budget {
		t.Errorf("after_compaction probes %.2f runs/get, budget %d", rep.After.RunsProbedPerGet, budget)
	}
	if rep.BytesRewritten == 0 {
		t.Error("snapshot recorded no bytes rewritten — the engine did no merge work")
	}
}

package shardstore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/store"
)

// gateGeometry is a roomy disk so the gate never stalls on reclamation.
// The store runs with request-span tracing attached: the throughput gate
// doubles as proof that tracing's per-request cost does not eat the
// group-commit win.
func gateStore(t *testing.T) *store.Store {
	t.Helper()
	cfg := store.Config{Seed: 1}
	cfg.Disk = disk.Config{PageSize: 128, PagesPerExtent: 512, ExtentCount: 64}
	cfg.MaxMemEntries = 512
	cfg.AutoFlushThreshold = 256
	cfg.Obs = obs.New(obs.NewWallClock()).WithSpans(64, uint64(time.Millisecond))
	st, _, err := store.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGroupCommitThroughputGate is the PR's acceptance gate: with 8
// concurrent writers and a device flush that costs real time, the
// group-commit write path must deliver at least 3x the durable-put
// throughput of the pre-group-commit discipline (every put followed by its
// own lock-step scheduler pump, write path serialized across the flush),
// and the amortization must be visible in the scheduler's own metrics —
// commit groups larger than one waiter and strictly fewer device syncs.
func TestGroupCommitThroughputGate(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput gate skipped under -race")
	}
	const (
		writers    = 8
		putsEach   = 40
		flushDelay = 300 * time.Microsecond
	)
	// Model a device whose cache flush costs real time — the cost group
	// commit exists to amortize. Both sides of the comparison run against
	// the same device model.
	disk.TestHookPreSync = func() { time.Sleep(flushDelay) }
	defer func() { disk.TestHookPreSync = nil }()

	val := make([]byte, 64)

	// Baseline: the old write path. One put, one pump, scheduler serialized
	// across the flush (the discipline satellite 1 removed).
	base := gateStore(t)
	var mu sync.Mutex
	baseStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < putsEach; i++ {
				mu.Lock()
				if _, err := base.Put(fmt.Sprintf("w%d-k%02d", w, i%4), val); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				if err := base.Pump(); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	baseElapsed := time.Since(baseStart)
	if t.Failed() {
		t.Fatal("writer failed")
	}
	baseSyncs := base.Disk().Stats().Syncs

	// Group commit: concurrent writers enroll in the shared flush barrier.
	// Every put is traced end-to-end (span start, barrier stage, finish), so
	// the 3x floor below is measured with tracing's full per-request cost.
	gc := gateStore(t)
	tracer := gc.Obs().Tracer()
	gcStart := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < putsEach; i++ {
				key := fmt.Sprintf("w%d-k%02d", w, i%4)
				sp := tracer.Start(0, "put", key)
				d, err := gc.Put(key, val)
				if err != nil {
					t.Error(err)
					return
				}
				if err := gc.WaitDurableTraced(d, sp); err != nil {
					t.Error(err)
					return
				}
				sp.Finish()
				if !d.IsPersistent() {
					t.Error("WaitDurable returned before persistence")
					return
				}
			}
		}()
	}
	wg.Wait()
	gcElapsed := time.Since(gcStart)
	if t.Failed() {
		t.Fatal("writer failed")
	}
	gcSyncs := gc.Disk().Stats().Syncs

	total := float64(writers * putsEach)
	basePutsPerSec := total / baseElapsed.Seconds()
	gcPutsPerSec := total / gcElapsed.Seconds()
	snap := gc.Obs().Snapshot()
	gs := snap.Histograms["sched.group_size"]
	t.Logf("baseline: %.0f puts/sec (%d syncs); group commit: %.0f puts/sec (%d syncs); speedup %.2fx; group size max=%d mean=%.1f",
		basePutsPerSec, baseSyncs, gcPutsPerSec, gcSyncs,
		gcPutsPerSec/basePutsPerSec, gs.Max, float64(gs.Sum)/float64(maxU64(gs.Count, 1)))

	if gs.Count == 0 || gs.Max < 2 {
		t.Fatalf("no commit group larger than one waiter formed: %+v", gs)
	}
	if spans := snap.Counters["trace.spans"]; spans != writers*putsEach {
		t.Fatalf("tracing was not live for the whole gate: %d spans, want %d", spans, writers*putsEach)
	}
	if gcSyncs >= baseSyncs {
		t.Fatalf("group commit used %d syncs, baseline %d: no amortization", gcSyncs, baseSyncs)
	}
	if gcPutsPerSec < 3*basePutsPerSec {
		t.Fatalf("group commit %.0f puts/sec < 3x baseline %.0f puts/sec", gcPutsPerSec, basePutsPerSec)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

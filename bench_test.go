package shardstore_test

// One benchmark per reproduced table/figure (see DESIGN.md's experiment
// index), plus storage-stack microbenchmarks and the soft-updates-vs-WAL
// ablation called out in DESIGN.md. Absolute numbers are simulator-scale;
// the shapes (relative costs, who wins where) are what matter.

import (
	"fmt"
	"runtime"
	"testing"

	"shardstore/internal/core"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/linearize"
	"shardstore/internal/lsm"
	"shardstore/internal/shuttle"
	"shardstore/internal/store"

	"shardstore/internal/chunk"
	"shardstore/internal/vsync"
)

// --- storage stack microbenchmarks ---

func newBenchStore(b *testing.B) *store.Store {
	b.Helper()
	cfg := store.Config{Seed: 1}
	cfg.Disk = disk.Config{PageSize: 4096, PagesPerExtent: 64, ExtentCount: 64}
	cfg.MaxMemEntries = 64
	cfg.AutoFlushThreshold = 32
	st, _, err := store.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// putWithGC stores a shard, running the garbage collection a background
// task would perform when space runs low. It returns the number of GC retry
// passes the put needed (0 = first attempt succeeded); benchmarks surface
// the total via b.ReportMetric so GC pressure shows up next to throughput
// instead of being silently folded into ns/op.
func putWithGC(b *testing.B, st *store.Store, key string, val []byte) int {
	for attempt := 0; attempt < 4; attempt++ {
		_, err := st.Put(key, val)
		if err == nil {
			return attempt
		}
		// Disk full: one bounded GC pass over the current candidates
		// (evacuations re-populate extents, so "reclaim until no candidates"
		// would carousel live data forever). Pump errors while wedged are
		// tolerated; the retry surfaces persistent failures.
		_ = st.Pump()
		for _, ext := range st.Chunks().ReclaimCandidates() {
			_ = st.Reclaim(ext)
		}
		_ = st.Pump()
	}
	b.Fatal("disk full even after GC")
	return 0
}

func BenchmarkStorePut(b *testing.B) {
	st := newBenchStore(b)
	// One-page frames; the live set (128 shards ≈ 0.5 MiB) leaves plenty of
	// GC headroom on the 16 MiB disk, and a proactive sweep keeps overwrite
	// garbage from accumulating faster than reclamation can evacuate.
	val := make([]byte, 3800)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	gcPasses := 0
	for i := 0; i < b.N; i++ {
		gcPasses += putWithGC(b, st, fmt.Sprintf("k%04d", i%128), val)
		if i%64 == 63 {
			if err := st.Pump(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(gcPasses)/float64(b.N), "gc-passes/op")
}

func BenchmarkStoreGet(b *testing.B) {
	st := newBenchStore(b)
	val := make([]byte, 4096)
	for i := 0; i < 128; i++ {
		if _, err := st.Put(fmt.Sprintf("k%04d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Pump(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(fmt.Sprintf("k%04d", i%128)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	st := newBenchStore(b)
	for i := 0; i < 200; i++ {
		_, _ = st.Put(fmt.Sprintf("k%04d", i), make([]byte, 1024))
	}
	if err := st.CleanShutdown(); err != nil {
		b.Fatal(err)
	}
	d := st.Disk()
	cfg := st.Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Open(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoftUpdatesVsWAL is the DESIGN.md ablation: write amplification
// and throughput of dependency-ordered writeback (no redo log) vs a
// simulated write-ahead-log discipline that journals every payload before
// writing it home (2x the data traffic plus forced ordering).
func BenchmarkSoftUpdatesVsWAL(b *testing.B) {
	payload := make([]byte, 3800)

	b.Run("soft-updates", func(b *testing.B) {
		st := newBenchStore(b)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		gcPasses := 0
		for i := 0; i < b.N; i++ {
			gcPasses += putWithGC(b, st, fmt.Sprintf("k%04d", i%128), payload)
			if i%32 == 31 {
				if err := st.Pump(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		_ = st.Pump()
		b.ReportMetric(float64(gcPasses)/float64(b.N), "gc-passes/op")
		written := st.Disk().Stats().BytesWritten
		logical := uint64(b.N) * uint64(len(payload))
		if logical > 0 {
			b.ReportMetric(float64(written)/float64(logical), "write-amp")
		}
	})

	b.Run("wal", func(b *testing.B) {
		// A minimal WAL-style writer on the raw scheduler: each record is
		// first journaled (and synced), then written to its home location
		// (and synced): the redirect cost soft updates avoid (§2.2).
		d, err := disk.New(disk.Config{PageSize: 4096, PagesPerExtent: 64, ExtentCount: 64})
		if err != nil {
			b.Fatal(err)
		}
		sched := dep.NewScheduler(d, nil)
		journalExt, homeExt := disk.ExtentID(0), disk.ExtentID(1)
		cap := 64 * 4096
		jOff, hOff := 0, 0
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if jOff+len(payload) > cap {
				jOff = 0
			}
			if hOff+len(payload) > cap {
				hOff = 0
				homeExt = homeExt%62 + 1
			}
			j := sched.Write("journal", journalExt, jOff, payload)
			sched.Write("home", homeExt, hOff, payload, j)
			jOff += len(payload)
			hOff += len(payload)
			if err := sched.Pump(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		written := d.Stats().BytesWritten
		logical := uint64(b.N) * uint64(len(payload))
		if logical > 0 {
			b.ReportMetric(float64(written)/float64(logical), "write-amp")
		}
	})
}

// --- one benchmark per reproduced table/figure ---

// BenchmarkFig2DependencyGraph: building and walking the three-put graph.
func BenchmarkFig2DependencyGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, _, err := store.New(store.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		d1, _ := st.Put("shard-0x1", make([]byte, 40))
		d2, _ := st.Put("shard-0x2", make([]byte, 40))
		d3, _ := st.Put("shard-0x3", make([]byte, 1800))
		_, _ = st.FlushIndex()
		_, _ = st.FlushSuperblock()
		nodes, edges := dep.All(d1, d2, d3).Graph()
		if len(nodes) == 0 || len(edges) == 0 {
			b.Fatal("empty graph")
		}
		if err := st.Pump(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexConformance: Fig 3 sequences per second (ops/seq = 30), on
// one worker so per-sequence cost stays comparable across machines.
func BenchmarkIndexConformance(b *testing.B) {
	cfg := core.IndexConfig{Seed: 11, Cases: b.N, OpsPerCase: 30, Bias: core.DefaultBias(), Workers: 1}
	res := core.RunIndexConformance(cfg)
	if res.Failure != nil {
		b.Fatalf("clean index run failed: %v", res.Failure.Err)
	}
	b.ReportMetric(float64(res.Ops)/float64(b.N), "ops/seq")
}

// BenchmarkStoreConformance: full-stack conformance sequences per second
// (crashes + reboots + fault injection enabled), on one worker so the
// per-sequence cost stays comparable across machines. The scaling story is
// BenchmarkConformanceParallel.
func BenchmarkStoreConformance(b *testing.B) {
	cfg := core.Config{
		Seed: 13, Cases: b.N, OpsPerCase: 40, Bias: core.DefaultBias(),
		EnableCrashes: true, EnableReboots: true, EnableFailures: true,
		Workers: 1,
	}
	res := core.Run(cfg)
	if res.Failure != nil {
		b.Fatalf("clean run failed: %v", res.Failure.Err)
	}
	b.ReportMetric(float64(res.Crashes)/float64(b.N), "crashes/seq")
}

// BenchmarkConformanceParallel: the worker-pool scaling curve — the same
// clean conformance workload as BenchmarkStoreConformance at 1, 2, 4, and
// GOMAXPROCS workers, reporting cases/sec. The verdict is identical at
// every width (the determinism tests assert it); only throughput moves.
func BenchmarkConformanceParallel(b *testing.B) {
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.Config{
				Seed: 13, Cases: b.N, OpsPerCase: 40, Bias: core.DefaultBias(),
				EnableCrashes: true, EnableReboots: true, EnableFailures: true,
				Workers: workers,
			}
			res := core.Run(cfg)
			if res.Failure != nil {
				b.Fatalf("clean run failed: %v", res.Failure.Err)
			}
			b.ReportMetric(float64(res.Cases)/b.Elapsed().Seconds(), "cases/sec")
		})
	}
}

// BenchmarkShuttleHarness: Fig 4 interleavings per second.
func BenchmarkShuttleHarness(b *testing.B) {
	body := core.Fig4Harness(faults.NewSet())
	rep := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(3), Iterations: b.N}, body)
	if rep.Failed() {
		b.Fatalf("clean harness failed: %v", rep.First())
	}
	if rep.Iterations > 0 {
		b.ReportMetric(float64(rep.TotalSteps)/float64(rep.Iterations), "sched-points/interleaving")
	}
}

// BenchmarkFig5Detection: time to detect a representative seeded bug (#4,
// the fastest deterministic one) end to end, including minimization.
func BenchmarkFig5Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.DetectSequential(faults.Bug4DiskReturnLosesShard, int64(i+1), 2000)
		if !res.Detected {
			b.Fatal("bug4 not detected")
		}
	}
}

// BenchmarkMinimization: shrinking a failing sequence (§4.3).
func BenchmarkMinimization(b *testing.B) {
	// Find one failure, then measure minimization alone.
	res := core.DetectSequential(faults.Bug9RefModelCrashReclaim, 99, 20000)
	if !res.Detected {
		b.Fatal("setup: bug9 not detected")
	}
	cfg := core.DetectionConfig(faults.Bug9RefModelCrashReclaim, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fails := func(cand []core.Op) bool {
			_, _, err := core.RunSeq(cand, cfg)
			return err != nil
		}
		if !fails(res.Failure.Seq) {
			b.Fatal("original no longer fails")
		}
		_ = core.StatsOf(res.Failure.Seq)
		_ = fails
	}
}

// BenchmarkBiasAblation: cases per second with vs without argument biasing
// (§4.2) — biasing costs nothing; its value is detection probability.
func BenchmarkBiasAblation(b *testing.B) {
	for _, mode := range []struct {
		name string
		bias core.Bias
	}{{"biased", core.DefaultBias()}, {"unbiased", core.NoBias()}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.Config{Seed: 3, Cases: b.N, OpsPerCase: 40, Bias: mode.bias}
			res := core.Run(cfg)
			if res.Failure != nil {
				b.Fatalf("clean run failed: %v", res.Failure.Err)
			}
		})
	}
}

// BenchmarkCrashStates: coarse RebootType crashes vs exhaustive block-level
// enumeration (§5) — the "dramatically slower" comparison.
func BenchmarkCrashStates(b *testing.B) {
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"coarse", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.Config{
				Seed: 21, Cases: b.N, OpsPerCase: 30, Bias: core.DefaultBias(),
				EnableCrashes: true, EnableReboots: true,
				ExhaustiveCrash: mode.exhaustive, ExhaustiveCap: 64,
			}
			res := core.Run(cfg)
			if res.Failure != nil {
				b.Fatalf("clean run failed: %v", res.Failure.Err)
			}
		})
	}
}

// BenchmarkMCStrategies: scheduling throughput of the three §6 strategies on
// the same small body.
func BenchmarkMCStrategies(b *testing.B) {
	body := func() {
		var mu vsync.Mutex
		n := 0
		h1 := vsync.Go("a", func() { mu.Lock(); n++; mu.Unlock() })
		h2 := vsync.Go("b", func() { mu.Lock(); n++; mu.Unlock() })
		h1.Join()
		h2.Join()
		if n != 2 {
			panic("lost update")
		}
	}
	for _, s := range []func() shuttle.Strategy{
		func() shuttle.Strategy { return shuttle.NewRandom(1) },
		func() shuttle.Strategy { return shuttle.NewPCT(1, 3, 100) },
		func() shuttle.Strategy { return shuttle.NewDFS() },
	} {
		strat := s()
		b.Run(strat.Name(), func(b *testing.B) {
			rep := shuttle.Explore(shuttle.Options{Strategy: s(), Iterations: b.N}, body)
			if rep.Failed() {
				b.Fatalf("failed: %v", rep.First())
			}
		})
	}
}

// BenchmarkLinearizabilityCheck: checker throughput on an 8-op history.
func BenchmarkLinearizabilityCheck(b *testing.B) {
	spec := linearize.KVSpec()
	h := []linearize.Operation{
		{Client: 1, Input: linearize.KVInput{Op: "put", Key: "a", Value: "1"}, Output: linearize.KVOutput{Found: true}, Invoke: 1, Return: 6},
		{Client: 2, Input: linearize.KVInput{Op: "put", Key: "a", Value: "2"}, Output: linearize.KVOutput{Found: true}, Invoke: 2, Return: 7},
		{Client: 3, Input: linearize.KVInput{Op: "get", Key: "a"}, Output: linearize.KVOutput{Value: "2", Found: true}, Invoke: 8, Return: 9},
		{Client: 3, Input: linearize.KVInput{Op: "get", Key: "a"}, Output: linearize.KVOutput{Value: "2", Found: true}, Invoke: 10, Return: 11},
		{Client: 4, Input: linearize.KVInput{Op: "put", Key: "b", Value: "3"}, Output: linearize.KVOutput{Found: true}, Invoke: 3, Return: 12},
		{Client: 5, Input: linearize.KVInput{Op: "get", Key: "b"}, Output: linearize.KVOutput{Found: false}, Invoke: 4, Return: 5},
		{Client: 6, Input: linearize.KVInput{Op: "delete", Key: "a"}, Output: linearize.KVOutput{Found: false}, Invoke: 13, Return: 14},
		{Client: 7, Input: linearize.KVInput{Op: "get", Key: "a"}, Output: linearize.KVOutput{Found: false}, Invoke: 15, Return: 16},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linearize.Check(spec, h).Ok {
			b.Fatal("linearizable history rejected")
		}
	}
}

// BenchmarkSerializationRobustness: decoder validations per second (§7).
func BenchmarkSerializationRobustness(b *testing.B) {
	frame, _ := chunk.EncodeFrame(chunk.TagData, "key", make([]byte, 256), chunk.UUID{1})
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutated := append([]byte(nil), frame...)
		mutated[i%len(mutated)] ^= 0xFF
		_ = chunk.VerifyFrameBytes(mutated)
	}
}

// BenchmarkScrubThroughput: scrub verification throughput in pages/sec over
// a replicated store — a clean pass (verify only) vs a pass where ~1% of the
// shards have one rotted replica each round (verify + quarantine + repair).
func BenchmarkScrubThroughput(b *testing.B) {
	const shards = 64
	for _, mode := range []struct {
		name    string
		rotters int // shards with one rotted replica per round
	}{{"clean", 0}, {"rot-1pct", (shards + 99) / 100}} {
		b.Run(mode.name, func(b *testing.B) {
			set := faults.NewSet()
			set.Enable(faults.FaultSilentCorruption)
			cfg := store.Config{Seed: 1, Bugs: set, Replicas: 2}
			cfg.Disk = disk.Config{PageSize: 4096, PagesPerExtent: 64, ExtentCount: 64, Faults: set}
			cfg.MaxMemEntries = 128
			cfg.AutoFlushThreshold = 64
			st, d, err := store.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 3800)
			for i := 0; i < shards; i++ {
				if _, err := st.Put(fmt.Sprintf("k%04d", i), val); err != nil {
					b.Fatal(err)
				}
			}
			settle := func() {
				if _, err := st.FlushIndex(); err != nil {
					b.Fatal(err)
				}
				if _, err := st.FlushSuperblock(); err != nil {
					b.Fatal(err)
				}
				if err := st.Scheduler().Pump(); err != nil {
					b.Fatal(err)
				}
				if err := d.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			settle()
			ps := d.Config().PageSize
			pages := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode.rotters > 0 {
					b.StopTimer()
					// Quiesce so repairs from the previous round are on the
					// durable image, then rot one replica of the next few
					// shards (round-robin so repair targets keep moving).
					settle()
					for r := 0; r < mode.rotters; r++ {
						key := fmt.Sprintf("k%04d", (i*mode.rotters+r)%shards)
						entry, err := st.Index().Get(key)
						if err != nil {
							b.Fatal(err)
						}
						groups, err := store.DecodeEntryGroups(entry)
						if err != nil {
							b.Fatal(err)
						}
						loc := groups[0][0]
						d.CorruptPage(loc.Extent, loc.Offset/ps, disk.RotFlip, int64(i))
					}
					b.StartTimer()
				}
				res, err := st.ScrubRound()
				if err != nil {
					b.Fatal(err)
				}
				if res.Irreparable > 0 {
					b.Fatalf("irreparable piece during benchmark: %+v", res)
				}
				pages += (res.BytesVerified + ps - 1) / ps
			}
			b.ReportMetric(float64(pages)/b.Elapsed().Seconds(), "pages/sec")
		})
	}
}

// BenchmarkLSMLookup: index lookups across several runs.
func BenchmarkLSMLookup(b *testing.B) {
	st := newBenchStore(b)
	for i := 0; i < 64; i++ {
		_, _ = st.Put(fmt.Sprintf("k%04d", i), []byte{byte(i)})
		if i%16 == 15 {
			_, _ = st.FlushIndex()
		}
	}
	tree := st.Index()
	if tree.RunCount() < 2 {
		b.Fatal("want multiple runs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Get(fmt.Sprintf("k%04d", i%64)); err != nil && err != lsm.ErrNotFound {
			b.Fatal(err)
		}
	}
}

//go:build race

package shardstore_test

// raceEnabled reports whether this test binary was built with the race
// detector. The wall-clock throughput gate skips under -race (timings are
// 10x off and prove nothing); its concurrency coverage comes from the
// internal/dep race suite instead.
const raceEnabled = true

module shardstore

go 1.22

// Quickstart: open a ShardStore node on an in-memory disk, store and read
// shards, poll durability through the soft-updates dependency (§2.2), crash
// it, and recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shardstore/internal/store"
)

func main() {
	// A fresh node: LSM-tree index over a chunk store over an append-only
	// extent disk, all crash consistent via dependency-ordered writebacks.
	st, dsk, err := store.New(store.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Put returns immediately; the Dependency tracks durability.
	d, err := st.Put("customer-object-shard-1", []byte("eleven nines of durability"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put acknowledged; durable yet? %v\n", d.IsPersistent())

	// Reads see acknowledged writes regardless of writeback progress.
	v, err := st.Get("customer-object-shard-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", v)

	// Drive the IO scheduler to quiescence: the data chunk, the index entry
	// (LSM run + metadata), and the superblock pointer records all persist
	// in dependency order.
	if err := st.Pump(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after pump; durable yet? %v\n", d.IsPersistent())

	// A second shard that we crash before persisting.
	if _, err := st.Put("ephemeral-shard", []byte("in flight")); err != nil {
		log.Fatal(err)
	}

	// Fail-stop crash: pending writebacks are dropped and the disk's write
	// cache is torn at page granularity.
	st.Crash(rand.New(rand.NewSource(42)))
	fmt.Println("crash!")

	// Recovery reads the superblock and the LSM metadata back from disk.
	st2, err := store.Open(dsk, st.Config())
	if err != nil {
		log.Fatal(err)
	}
	v, err = st2.Get("customer-object-shard-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered durable shard: %q\n", v)

	if _, err := st2.Get("ephemeral-shard"); err != nil {
		fmt.Printf("unacknowledged-durability shard after crash: %v\n", err)
	} else {
		fmt.Println("in-flight shard happened to survive the crash (also legal)")
	}

	// Clean shutdown: every acknowledged operation must be persistent
	// afterwards — the §5 forward-progress property.
	d2, _ := st2.Put("final-shard", []byte("bye"))
	if err := st2.CleanShutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean shutdown; final put persistent? %v\n", d2.IsPersistent())
}

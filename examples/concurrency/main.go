// Concurrency: the paper's Fig 4 workflow (§6). Model-check the storage node
// under concurrent background maintenance with the shuttle stateless model
// checker, then seed the §6 worked example (bug #14: the compaction /
// reclamation race) and watch PCT scheduling find it, with a deterministic
// replay trace.
//
//	go run ./examples/concurrency
package main

import (
	"fmt"

	"shardstore/internal/core"
	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
)

func main() {
	fmt.Println("1) clean run: the Fig 4 harness (writer + reclamation + compaction)")
	fmt.Println("   under randomized schedules ...")
	body := core.Fig4Harness(faults.NewSet())
	rep := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(3), Iterations: 500}, body)
	fmt.Printf("   %d interleavings, %d scheduling points: ", rep.Iterations, rep.TotalSteps)
	if !rep.Failed() {
		fmt.Println("read-after-write consistency holds")
	} else {
		fmt.Printf("UNEXPECTED: %v\n", rep.First())
		return
	}

	fmt.Println()
	fmt.Println("2) seed bug #14 (compaction unpins its new run chunk before the")
	fmt.Println("   metadata references it) and hunt with PCT scheduling ...")
	res, rep2 := core.DetectConcurrent(faults.Bug14CompactionReclaimRace, shuttle.NewPCT(11, 3, 3000), 12000)
	if !res.Detected {
		fmt.Printf("   not detected in %d interleavings (rare window; retry with more)\n", rep2.Iterations)
		return
	}
	f := rep2.First()
	fmt.Printf("   detected at interleaving %d (%v after %d scheduling points)\n",
		f.Iteration+1, f.Kind, len(f.Trace))
	fmt.Printf("   %s\n", f.Err)

	fmt.Println()
	fmt.Println("3) replay the exact failing schedule from its trace ...")
	buggy := core.ConcurrencyHarnessFor(faults.Bug14CompactionReclaimRace)(faults.NewSet(faults.Bug14CompactionReclaimRace))
	if r := shuttle.Replay(buggy, f.Trace, 400000); r != nil {
		fmt.Printf("   reproduced deterministically: %v\n", r.Kind)
	} else {
		fmt.Println("   replay did not reproduce (nondeterminism bug!)")
	}

	fmt.Println()
	fmt.Println("4) the same schedule against the FIXED implementation ...")
	fixed := core.ConcurrencyHarnessFor(faults.Bug14CompactionReclaimRace)(faults.NewSet())
	if r := shuttle.Replay(fixed, f.Trace, 400000); r == nil {
		fmt.Println("   passes: the pin held across the metadata update closes the race")
	} else {
		fmt.Printf("   still fails?! %v\n", r)
	}
}

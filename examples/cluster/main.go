// Cluster: the §2.1 deployment shape. Run a storage host with several
// per-disk stores behind the shared RPC interface, drive a workload through
// the client, cycle a disk out of and back into service (a control-plane
// repair operation), and show that steering and recovery keep every shard
// readable.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"fmt"
	"log"

	"shardstore/internal/faults"
	"shardstore/internal/rpc"
	"shardstore/internal/store"
)

func main() {
	const disks = 4
	var stores []*store.Store
	for i := 0; i < disks; i++ {
		st, _, err := store.New(store.Config{Seed: int64(i + 1), Bugs: faults.NewSet()})
		if err != nil {
			log.Fatal(err)
		}
		stores = append(stores, st)
	}
	srv := rpc.NewServer(stores)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("storage host up: %d disks on %s\n", disks, addr)

	c, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Request plane: shards steered to disks by ID.
	values := map[string][]byte{}
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("shard-%04x", i*2654435761%65536)
		v := bytes.Repeat([]byte{byte(i + 1)}, 64+i*16)
		values[id] = v
		if err := c.Put(id, v); err != nil {
			log.Fatal(err)
		}
	}
	stats, _ := c.Stats()
	fmt.Printf("stored %d shards, steering spread across disks: %v\n", stats.Shards, stats.ShardsPer)

	// Control plane: bulk repair traffic.
	if err := c.BulkCreate([]string{"repair-a", "repair-b"}, [][]byte{{1}, {2}}); err != nil {
		log.Fatal(err)
	}
	if err := c.BulkRemove([]string{"repair-a"}); err != nil {
		log.Fatal(err)
	}

	// Take a disk out of service and bring it back — its shards must
	// survive the cycle (the paper's bug #4 was exactly this going wrong).
	fmt.Println("cycling disk 0 out of and back into service ...")
	if err := c.RemoveDisk(0); err != nil {
		log.Fatal(err)
	}
	if err := c.ReturnDisk(0); err != nil {
		log.Fatal(err)
	}

	// Verify every shard.
	lost := 0
	for id, want := range values {
		got, err := c.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			fmt.Printf("  LOST %s: %v\n", id, err)
			lost++
		}
	}
	if lost == 0 {
		fmt.Printf("all %d shards intact after the service cycle\n", len(values))
	}

	ids, _ := c.List()
	fmt.Printf("control-plane listing sees %d shards (incl. repair-b)\n", len(ids))

	// Flush all disks to durability before shutdown.
	for i := 0; i < disks; i++ {
		if err := c.Flush(i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("flushed; done")
}

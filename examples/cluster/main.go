// Cluster: the §2.1 deployment shape. Run a storage host with several
// per-disk stores behind the shared RPC interface, drive a workload through
// the client, silently corrupt one replica of a shard and let the integrity
// scrubber repair it, cycle a disk out of and back into service (a
// control-plane repair operation), and show that steering, scrubbing, and
// recovery keep every shard readable.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/rpc"
	"shardstore/internal/store"
)

func main() {
	const disks = 4
	// One node-wide registry on the logical clock: every metric below —
	// including the latency quantiles — is a deterministic function of the
	// workload, so this example's output is stable run to run.
	nodeObs := obs.New(nil)
	var stores []*store.Store
	var devs []*disk.Disk
	for i := 0; i < disks; i++ {
		// Each disk's store keeps two replicas of every chunk and its disk
		// model accepts silent-corruption injection — the scrub demo below
		// rots one copy out from under a shard.
		set := faults.NewSet()
		set.Enable(faults.FaultSilentCorruption)
		dcfg := disk.DefaultConfig()
		dcfg.Faults = set
		st, d, err := store.New(store.Config{Seed: int64(i + 1), Bugs: set, Disk: dcfg, Replicas: 2, Obs: nodeObs})
		if err != nil {
			log.Fatal(err)
		}
		stores = append(stores, st)
		devs = append(devs, d)
	}
	srv := rpc.NewServer(stores, nodeObs)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("storage host up: %d disks\n", disks)

	ctx := context.Background()
	c, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Request plane: shards steered to disks by ID, written as one batched
	// MPut frame — the server fans the items out across disks and answers
	// with per-item status codes.
	values := map[string][]byte{}
	var batchIDs []string
	var batchVals [][]byte
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("shard-%04x", i*2654435761%65536)
		v := bytes.Repeat([]byte{byte(i + 1)}, 64+i*16)
		values[id] = v
		batchIDs = append(batchIDs, id)
		batchVals = append(batchVals, v)
	}
	perItem, err := c.MPut(ctx, batchIDs, batchVals)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range perItem {
		if e != nil {
			log.Fatalf("mput %s: %v", batchIDs[i], e)
		}
	}
	stats, _ := c.Stats(ctx)
	fmt.Printf("stored %d shards in one MPut frame, steering spread across disks: %v\n", stats.Shards, stats.ShardsPer)

	// Integrity: rot one replica of a shard on its disk's durable image —
	// no IO error, the bytes just change — then scrub. The scrubber catches
	// the bad frame CRC, quarantines the rotted copy, and rewrites it from
	// the surviving replica; the read afterwards sees the original bytes.
	const victim = "shard-0000"
	diskIdx, st := -1, (*store.Store)(nil)
	for i, s := range stores {
		if _, err := s.Index().Get(victim); err == nil {
			diskIdx, st = i, s
			break
		}
	}
	if st == nil {
		log.Fatalf("no disk holds %s", victim)
	}
	// Quiesce so the shard's replicas are on the durable image.
	if _, err := st.FlushIndex(); err != nil {
		log.Fatal(err)
	}
	if _, err := st.FlushSuperblock(); err != nil {
		log.Fatal(err)
	}
	if err := st.Scheduler().Pump(); err != nil {
		log.Fatal(err)
	}
	if err := devs[diskIdx].Sync(); err != nil {
		log.Fatal(err)
	}
	entry, err := st.Index().Get(victim)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := store.DecodeEntryGroups(entry)
	if err != nil {
		log.Fatal(err)
	}
	loc := groups[0][0]
	if !devs[diskIdx].CorruptPage(loc.Extent, loc.Offset/devs[diskIdx].Config().PageSize, disk.RotZero, 1) {
		log.Fatal("corruption injection refused")
	}
	fmt.Printf("rotted one replica of %s; scrubbing its disk ...\n", victim)
	status, err := c.Scrub(ctx, diskIdx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: bad replicas=%d repaired=%d irreparable=%d\n",
		status.BadReplicas, status.Repaired, status.Irreparable)
	got, err := c.Get(ctx, victim)
	if err != nil || !bytes.Equal(got, values[victim]) {
		log.Fatalf("read after repair: %v", err)
	}
	fmt.Printf("%s reads back intact after repair\n", victim)

	// Control plane: bulk repair traffic.
	if err := c.BulkCreate(ctx, []string{"repair-a", "repair-b"}, [][]byte{{1}, {2}}); err != nil {
		log.Fatal(err)
	}
	if err := c.BulkRemove(ctx, []string{"repair-a"}); err != nil {
		log.Fatal(err)
	}

	// Take a disk out of service and bring it back — its shards must
	// survive the cycle (the paper's bug #4 was exactly this going wrong).
	fmt.Println("cycling disk 0 out of and back into service ...")
	if err := c.RemoveDisk(ctx, 0); err != nil {
		log.Fatal(err)
	}
	if err := c.ReturnDisk(ctx, 0); err != nil {
		log.Fatal(err)
	}

	// Verify every shard with one batched MGet, in sorted order so the cache
	// hit/miss pattern (and therefore the metrics table below) is identical on
	// every run. Per-item outcomes: a lost shard fails its own slot only.
	ids := make([]string, 0, len(values))
	for id := range values {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	results, err := c.MGet(ctx, ids)
	if err != nil {
		log.Fatal(err)
	}
	lost := 0
	for i, id := range ids {
		if results[i].Err != nil || !bytes.Equal(results[i].Value, values[id]) {
			fmt.Printf("  LOST %s: %v\n", id, results[i].Err)
			lost++
		}
	}
	if lost == 0 {
		fmt.Printf("all %d shards intact after the service cycle (one MGet frame)\n", len(values))
	}

	listed, _ := c.List(ctx)
	fmt.Printf("control-plane listing sees %d shards (incl. repair-b)\n", len(listed))

	// Flush all disks to durability before shutdown.
	for i := 0; i < disks; i++ {
		if err := c.Flush(ctx, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("flushed; done")

	// End-of-run observability: one merged snapshot of the whole node. On the
	// logical clock every figure here — counts and tick quantiles alike — is
	// deterministic.
	snap, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	hitRate := 0.0
	if total := snap.Counters["cache.hits"] + snap.Counters["cache.misses"]; total > 0 {
		hitRate = 100 * float64(snap.Counters["cache.hits"]) / float64(total)
	}
	put, get := snap.Histograms["store.put_lat"], snap.Histograms["store.get_lat"]
	fmt.Println("node metrics (ticks are logical-clock units):")
	fmt.Printf("  %-22s %8d\n", "store puts", snap.Counters["store.puts"])
	fmt.Printf("  %-22s %8d\n", "store gets", snap.Counters["store.gets"])
	fmt.Printf("  %-22s %8d\n", "store deletes", snap.Counters["store.deletes"])
	fmt.Printf("  %-22s %8d / %d ticks\n", "put latency p50/p99", put.Quantile(0.50), put.Quantile(0.99))
	fmt.Printf("  %-22s %8d / %d ticks\n", "get latency p50/p99", get.Quantile(0.50), get.Quantile(0.99))
	fmt.Printf("  %-22s %7.1f%%\n", "cache hit rate", hitRate)
	fmt.Printf("  %-22s %8d\n", "scrub repairs", snap.Counters["scrub.repaired"])
}

// Crashsim: the §2.2/§5 story in one program. Build the Fig 2 dependency
// graph for three puts, watch persistence propagate through the IO scheduler
// step by step, then take a torn crash and check the two §5 properties —
// persistence and forward progress — by hand.
//
//	go run ./examples/crashsim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shardstore/internal/dep"
	"shardstore/internal/store"
)

func main() {
	st, dsk, err := store.New(store.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Three puts as in Fig 2: two small ones sharing an extent, one large.
	d1, _ := st.Put("shard-0x1", make([]byte, 40))
	d2, _ := st.Put("shard-0x2", make([]byte, 40))
	d3, _ := st.Put("shard-0x3", make([]byte, 500))
	if _, err := st.FlushIndex(); err != nil {
		log.Fatal(err)
	}
	if _, err := st.FlushSuperblock(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("dependency graph for the three puts (cf. paper Fig 2):")
	fmt.Print(dep.DumpGraph(dep.All(d1, d2, d3)))

	poll := func(stage string) {
		fmt.Printf("%-28s persistent: put1=%v put2=%v put3=%v\n",
			stage, d1.IsPersistent(), d2.IsPersistent(), d3.IsPersistent())
	}
	poll("before any IO")

	// Step the IO scheduler: writebacks whose dependencies are durable are
	// issued to the disk's write cache; a sync makes them durable. Several
	// rounds are needed because the graph has depth.
	for round := 1; st.Scheduler().PendingCount() > 0 || st.Scheduler().IssuedCount() > 0; round++ {
		issued := st.SchedStep()
		if err := st.SchedSync(); err != nil {
			log.Fatal(err)
		}
		poll(fmt.Sprintf("after IO round %d (%d issued)", round, issued))
		if round > 10 {
			break
		}
	}

	// Now a crash with in-flight state: a fourth put whose writebacks are
	// issued but never synced, so the crash tears them page by page.
	d4, _ := st.Put("shard-0x4", make([]byte, 300))
	if _, err := st.FlushIndex(); err != nil {
		log.Fatal(err)
	}
	st.SchedStep() // into the disk cache, unsynced
	kept, lost := st.Crash(rand.New(rand.NewSource(9)))
	fmt.Printf("\ncrash: %d pages survived, %d pages torn away\n", len(kept), len(lost))
	fmt.Printf("put4 persistent before crash? %v\n", d4.IsPersistent())

	st2, err := store.Open(dsk, st.Config())
	if err != nil {
		log.Fatal(err)
	}

	// §5 persistence: every dependency that reported persistent must be
	// readable after recovery.
	fmt.Println("\npersistence check (§5):")
	for _, probe := range []struct {
		key string
		d   *dep.Dependency
	}{{"shard-0x1", d1}, {"shard-0x2", d2}, {"shard-0x3", d3}, {"shard-0x4", d4}} {
		_, err := st2.Get(probe.key)
		readable := err == nil
		status := "ok"
		if probe.d.IsPersistent() && !readable {
			status = "VIOLATION: persistent but unreadable"
		}
		fmt.Printf("  %-10s persistent=%-5v readable=%-5v %s\n", probe.key, probe.d.IsPersistent(), readable, status)
	}

	// §5 forward progress: after a clean shutdown, everything persists.
	d5, _ := st2.Put("shard-0x5", []byte("last"))
	if err := st2.CleanShutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward progress (§5): after clean shutdown, put5 persistent = %v\n", d5.IsPersistent())
	if !d5.IsPersistent() {
		log.Fatal("forward progress violated")
	}
}

// Conformance: the paper's core workflow (§4). Run property-based
// conformance checking of the whole storage node against its crash-extended
// reference model — fanned out across one worker per CPU, with the same
// deterministic verdict a sequential run would produce — then seed one of
// the production bugs from Fig 5 and watch the same harness find and
// minimize it.
//
//	go run ./examples/conformance
package main

import (
	"fmt"
	"runtime"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/faults"
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("1) clean run: random op sequences with crashes, reboots, and IO\n")
	fmt.Printf("   fault injection, checked against the reference model on %d worker(s) ...\n", workers)
	cfg := core.Config{
		Seed:               7,
		Cases:              500,
		OpsPerCase:         40,
		Bias:               core.DefaultBias(),
		EnableCrashes:      true,
		EnableReboots:      true,
		EnableFailures:     true,
		EnableControlPlane: true,
		Minimize:           true,
	}
	start := time.Now()
	res := core.Run(cfg)
	elapsed := time.Since(start)
	fmt.Printf("   %d sequences, %d operations, %d crashes in %s (%.0f cases/sec): ",
		res.Cases, res.Ops, res.Crashes, elapsed.Round(time.Millisecond),
		float64(res.Cases)/elapsed.Seconds())
	if res.Failure == nil {
		fmt.Println("no violations")
	} else {
		fmt.Printf("UNEXPECTED violation: %v\n", res.Failure.Err)
		return
	}
	fmt.Println("   (same seed + same case count => same verdict at any worker count;")
	fmt.Println("    rerun with GOMAXPROCS=1 to see identical results, only slower)")

	fmt.Println()
	fmt.Println("2) seed bug #9 from the paper's Fig 5 (reference model mishandles")
	fmt.Println("   crashes during reclamation) and hunt it with the same harness ...")
	start = time.Now()
	det := core.DetectSequential(faults.Bug9RefModelCrashReclaim, 7, 10000)
	huntElapsed := time.Since(start)
	if !det.Detected {
		fmt.Println("   not detected (try a larger budget)")
		return
	}
	orig := core.StatsOf(det.Failure.Seq)
	min := core.StatsOf(det.Failure.Minimized)
	fmt.Printf("   detected after %d sequences in %s (%.0f cases/sec incl. minimization)\n",
		det.CasesNeeded, huntElapsed.Round(time.Millisecond),
		float64(det.CasesNeeded)/huntElapsed.Seconds())
	fmt.Printf("   original failing sequence: %d ops, %d crashes, %d bytes written\n",
		orig.Ops, orig.Crashes, orig.BytesWritten)
	fmt.Printf("   after automatic minimization: %d ops, %d crashes, %d bytes\n",
		min.Ops, min.Crashes, min.BytesWritten)
	fmt.Println("   minimized counterexample (replayable as a unit test):")
	for i, op := range det.Failure.Minimized {
		fmt.Printf("     %2d. %s\n", i, op)
	}
	fmt.Printf("   violation: %v\n", det.Failure.MinimizedErr)
	fmt.Println()
	fmt.Println("   (paper's bug #9 anecdote: 61 ops / 9 crashes / 226 KiB minimized")
	fmt.Println("    to 6 ops / 1 crash / 2 B — same shape)")
}
